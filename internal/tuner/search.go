package tuner

import "selftune/internal/cache"

// Param identifies one tunable cache parameter.
type Param int

// The four tunable parameters (paper §1).
const (
	ParamSize Param = iota
	ParamLine
	ParamAssoc
	ParamPred
)

// ParamInitial marks the heuristic's starting measurement (the smallest
// configuration) in a SearchStep — it belongs to no parameter sweep.
const ParamInitial Param = -1

// String names the parameter.
func (p Param) String() string {
	switch p {
	case ParamInitial:
		return "initial"
	case ParamSize:
		return "size"
	case ParamLine:
		return "line"
	case ParamAssoc:
		return "assoc"
	case ParamPred:
		return "pred"
	default:
		return "?"
	}
}

// PaperOrder is the Figure 6 ordering derived from the impact analysis of
// §3.2: cache size first, then line size, then associativity, then way
// prediction.
var PaperOrder = []Param{ParamSize, ParamLine, ParamAssoc, ParamPred}

// AlternativeOrder is the ordering the paper evaluates as a strawman in §4
// (line size, associativity, way prediction, then cache size), which misses
// the optimum on most benchmarks.
var AlternativeOrder = []Param{ParamLine, ParamAssoc, ParamPred, ParamSize}

// SearchResult records a completed search.
type SearchResult struct {
	// Best is the selected configuration.
	Best EvalResult
	// Examined lists every configuration measured, in order. Its length
	// is the paper's "No." column (configurations examined).
	Examined []EvalResult
	// Degraded reports that tuning was abandoned because a reading stayed
	// implausible after a re-measure; Best is then SafeConfig, the
	// graceful-degradation fallback.
	Degraded bool
	// Fault is the reading failure that caused the degradation.
	Fault error
}

// NumExamined is the number of configurations the search measured.
func (r SearchResult) NumExamined() int { return len(r.Examined) }

// Space is the configuration space a search walks: the candidate values per
// parameter in sweep order, a realisability check, and the starting point.
// DefaultSpace is the paper's 27-configuration space; GeometrySpace derives
// a space from a scalable-cache geometry (§3.4's larger-cache future work).
type Space struct {
	// Sizes, Assocs and Lines are candidate values, smallest first.
	Sizes, Assocs, Lines []int
	// Valid reports whether a combination is realisable.
	Valid func(cache.Config) bool
	// Start is the initial (smallest) configuration.
	Start cache.Config
}

// DefaultSpace returns the paper's four-bank configuration space.
func DefaultSpace() Space {
	return Space{
		Sizes:  cache.SizeValues,
		Assocs: cache.AssocValues,
		Lines:  cache.LineValues,
		Valid:  func(c cache.Config) bool { return c.Validate() == nil },
		Start:  cache.MinConfig(),
	}
}

// GeometrySpace returns the configuration space of a scalable geometry.
func GeometrySpace(geo cache.Geometry) Space {
	return Space{
		Sizes:  geo.SizeValues(),
		Assocs: geo.AssocValues(),
		Lines:  geo.LineValues(),
		Valid:  func(c cache.Config) bool { return geo.ValidateConfig(c) == nil },
		Start:  geo.MinConfig(),
	}
}

// SearchStep describes one heuristic decision as it is made — the Figure 6
// trajectory as data. The trace hook receives exactly one SearchStep per
// measurement the search requests, in request order; because the heuristic
// is a deterministic function of its measurement sequence, replaying a
// recorded transcript through the search re-emits the identical steps.
type SearchStep struct {
	// Step is the measurement ordinal within the search, 0-based.
	Step int
	// Phase is the parameter under sweep, or ParamInitial for the
	// starting measurement.
	Phase Param
	// Cfg and Energy are the configuration examined and its reading.
	Cfg    cache.Config
	Energy float64
	// Remeasured reports that the first reading failed the plausibility
	// check and this is the accepted second reading.
	Remeasured bool
	// Improved reports the reading strictly beat the sweep's incumbent —
	// the keep/stop decision (the initial measurement is never a sweep
	// decision and reports false).
	Improved bool
	// Stop reports the sweep stops after this measurement because the
	// reading failed to improve. A sweep can also end by exhausting its
	// candidates, in which case its last step has Stop false.
	Stop bool
}

// search drives one sweep-per-parameter hill climb.
type search struct {
	eval  Evaluator
	space Space
	res   SearchResult
	cur   cache.Config
	best  EvalResult
	seen  map[cache.Config]bool
	trace func(SearchStep)
	steps int
}

// emit hands one decision to the trace hook and advances the step ordinal.
func (s *search) emit(st SearchStep) {
	st.Step = s.steps
	s.steps++
	if s.trace != nil {
		s.trace(st)
	}
}

// measure evaluates cfg (once), records it, and updates the incumbent.
// A reading that fails the plausibility check is re-measured once (the
// second return reports that happened); if the second reading is implausible
// too, the search unwinds into graceful degradation (see SearchInSpace).
// Only plausible readings are recorded and may steer the search.
func (s *search) measure(cfg cache.Config) (EvalResult, bool) {
	r := s.eval.Evaluate(cfg)
	remeasured := false
	if err := Plausible(r); err != nil {
		remeasured = true
		r = remeasure(s.eval, cfg)
		if err = Plausible(r); err != nil {
			panic(searchFault{err})
		}
	}
	if !s.seen[cfg] {
		s.seen[cfg] = true
		s.res.Examined = append(s.res.Examined, r)
	}
	if s.best.Cfg == (cache.Config{}) || r.Energy < s.best.Energy {
		s.best = r
	}
	return r, remeasured
}

// Search runs the heuristic with the given parameter order in the paper's
// four-bank configuration space, starting from the smallest configuration
// (2 KB, 1-way, 16 B, prediction off) and sweeping each parameter in the
// flush-free growth direction while energy keeps strictly decreasing
// (paper Figure 6).
func Search(eval Evaluator, order []Param) SearchResult {
	return SearchInSpace(eval, order, DefaultSpace())
}

// SearchInSpace runs the heuristic over an arbitrary configuration space —
// the §3.4 scalability path: with n parameters of m values each it examines
// at most m*n configurations instead of the space's full product.
//
// If a reading stays implausible after a re-measure (a wedged counter, a
// crashed replay), the search degrades gracefully instead of trusting
// garbage: it returns SafeConfig as Best with Degraded set and the fault
// recorded, keeping whatever plausible measurements it had already made in
// Examined.
func SearchInSpace(eval Evaluator, order []Param, space Space) SearchResult {
	return SearchTraced(eval, order, space, nil)
}

// SearchTraced is SearchInSpace with a step trace hook: trace (may be nil)
// receives one SearchStep per measurement, as the heuristic makes each
// decision. The hook observes only — it cannot steer the search — so a
// traced search returns bit-identical results to an untraced one.
func SearchTraced(eval Evaluator, order []Param, space Space, trace func(SearchStep)) (res SearchResult) {
	s := &search{eval: eval, space: space, cur: space.Start, seen: map[cache.Config]bool{}, trace: trace}
	defer func() {
		if p := recover(); p != nil {
			f, ok := p.(searchFault)
			if !ok {
				panic(p)
			}
			res = s.res
			res.Degraded = true
			res.Fault = f.err
			res.Best = EvalResult{Cfg: SafeConfig()}
			for _, r := range res.Examined {
				// Reuse a plausible measurement of the fallback if the
				// search happened to make one.
				if r.Cfg == res.Best.Cfg {
					res.Best = r
				}
			}
		}
	}()
	prev, rm := s.measure(s.cur)
	s.emit(SearchStep{Phase: ParamInitial, Cfg: prev.Cfg, Energy: prev.Energy, Remeasured: rm})
	for _, p := range order {
		prev = s.sweep(p, prev)
	}
	s.res.Best = s.best
	return s.res
}

// SearchPaper runs the paper's heuristic ordering.
func SearchPaper(eval Evaluator) SearchResult { return Search(eval, PaperOrder) }

// sweep walks one parameter upward from its current value, keeping the best
// value seen and stopping at the first configuration that fails to improve.
// prev is the measurement of the current configuration; the returned value
// measures the configuration the search settles on.
func (s *search) sweep(p Param, prev EvalResult) EvalResult {
	bestLocal := prev
	for _, cfg := range s.candidates(p) {
		r, rm := s.measure(cfg)
		improved := r.Energy < bestLocal.Energy
		s.emit(SearchStep{Phase: p, Cfg: r.Cfg, Energy: r.Energy,
			Remeasured: rm, Improved: improved, Stop: !improved})
		if improved {
			bestLocal = r
		} else {
			break
		}
	}
	s.cur = bestLocal.Cfg
	return bestLocal
}

// candidates lists the next values of parameter p above the current
// configuration, skipping unrealisable combinations.
func (s *search) candidates(p Param) []cache.Config {
	var out []cache.Config
	switch p {
	case ParamSize:
		for _, size := range s.space.Sizes {
			if size <= s.cur.SizeBytes {
				continue
			}
			c := s.cur
			c.SizeBytes = size
			if s.space.Valid(c) {
				out = append(out, c)
			}
		}
	case ParamLine:
		for _, line := range s.space.Lines {
			if line <= s.cur.LineBytes {
				continue
			}
			c := s.cur
			c.LineBytes = line
			if s.space.Valid(c) {
				out = append(out, c)
			}
		}
	case ParamAssoc:
		for _, ways := range s.space.Assocs {
			if ways <= s.cur.Ways {
				continue
			}
			c := s.cur
			c.Ways = ways
			if s.space.Valid(c) {
				out = append(out, c)
			}
		}
	case ParamPred:
		if s.cur.Ways > 1 && !s.cur.WayPredict {
			c := s.cur
			c.WayPredict = true
			if s.space.Valid(c) {
				out = append(out, c)
			}
		}
	}
	return out
}

// Exhaustive measures all 27 configurations and returns the optimum — the
// baseline the heuristic's quality is judged against (paper §4).
func Exhaustive(eval Evaluator) SearchResult {
	return ExhaustiveConfigs(eval, cache.AllConfigs())
}

// ExhaustiveConfigs measures an explicit configuration list (e.g. a
// scalable geometry's Configs), fanning out across the replay engine's
// worker pool when the evaluator supports it.
func ExhaustiveConfigs(eval Evaluator, configs []cache.Config) SearchResult {
	return ExhaustiveWorkers(eval, configs, 0)
}

// ExhaustiveWorkers is ExhaustiveConfigs with an explicit worker count
// (non-positive means GOMAXPROCS). Each configuration's replay is
// independent and deterministic and the results are reduced in input order,
// so the outcome is bit-identical to a serial sweep at any worker count.
//
// Implausible readings (failed replays, impossible counters) are excluded
// from the optimum reduction — one crashed configuration costs one data
// point, not the sweep. If no reading at all is plausible, the result
// degrades to SafeConfig with Degraded set.
func ExhaustiveWorkers(eval Evaluator, configs []cache.Config, workers int) SearchResult {
	var results []EvalResult
	if be, ok := eval.(BatchEvaluator); ok {
		results = be.EvaluateAll(configs, workers)
	} else {
		results = make([]EvalResult, len(configs))
		for i, cfg := range configs {
			results[i] = eval.Evaluate(cfg)
		}
	}
	res := SearchResult{Examined: results}
	var fault error
	picked := false
	for _, r := range results {
		if err := Plausible(r); err != nil {
			if fault == nil {
				fault = err
			}
			continue
		}
		if !picked || r.Energy < res.Best.Energy {
			res.Best = r
			picked = true
		}
	}
	if !picked {
		res.Degraded = true
		res.Fault = fault
		res.Best = EvalResult{Cfg: SafeConfig()}
	}
	return res
}
