package tuner

import (
	"fmt"

	"selftune/internal/cache"
	"selftune/internal/energy"
)

// This file models the §3.5 tuner hardware: a datapath of eighteen
// registers (fifteen 16-bit energy constants, two 32-bit accumulators and a
// 7-bit configuration register) driven by three nested state machines — the
// parameter state machine (PSM, Figure 8: states P1..P4 for size, line,
// associativity, prediction), the value state machine (VSM, V1..V3 for up
// to three values per parameter) and the calculation state machine (CSM,
// C1..C3: one pass per multiplication through the single shared slow
// multiplier). Energy arithmetic is 16x32-bit fixed point.

// Fixed-point scale: energies are stored in units of 2^-8 nJ (~3.9 pJ).
// A 16-bit register then spans 0..256 nJ, covering the largest per-miss
// energy, while the 32-bit accumulator covers a full measurement window.
const (
	FixedPointUnit = 1.0 / 256.0 * 1e-9 // joules per LSB
	regBits        = 16
	accBits        = 32
)

// Measurement is the runtime information the datapath's three collection
// registers gather during one window: total hits, misses and cycles.
type Measurement struct {
	Hits, Misses, Cycles uint32
}

// MeasureFunc produces the window measurement for a configuration (in
// hardware, by running the cache for a window; in simulation, from a trace).
type MeasureFunc func(cfg cache.Config) Measurement

// Registers is the datapath register file (Figure 7).
type Registers struct {
	// HitEnergy holds the six per-access hit energies: 8K 4/2/1-way,
	// 4K 2/1-way, 2K 1-way. The physical line is 16 B, so line size
	// does not enter.
	HitEnergy [6]uint16
	// MissEnergy holds the three per-miss energies for 16/32/64 B lines.
	MissEnergy [3]uint16
	// StaticEnergy holds the three per-cycle static energies for
	// 8/4/2 KB.
	StaticEnergy [3]uint16
	// Hits, Misses, Cycles collect runtime information.
	Hits, Misses, Cycles uint32
	// Energy holds the last computed energy; Lowest the best seen.
	Energy, Lowest uint32
	// Config is the 7-bit configuration register: 2 bits size, 2 bits
	// line, 2 bits associativity, 1 bit prediction.
	Config uint8
}

// sizeIndex/assocIndex/lineIndex map configurations to register indices.
func sizeAssocIndex(cfg cache.Config) int {
	switch {
	case cfg.SizeBytes == 8192 && cfg.Ways == 4:
		return 0
	case cfg.SizeBytes == 8192 && cfg.Ways == 2:
		return 1
	case cfg.SizeBytes == 8192 && cfg.Ways == 1:
		return 2
	case cfg.SizeBytes == 4096 && cfg.Ways == 2:
		return 3
	case cfg.SizeBytes == 4096 && cfg.Ways == 1:
		return 4
	default:
		return 5
	}
}

func lineIndex(cfg cache.Config) int {
	switch cfg.LineBytes {
	case 16:
		return 0
	case 32:
		return 1
	default:
		return 2
	}
}

func sizeIndex(cfg cache.Config) int {
	switch cfg.SizeBytes {
	case 8192:
		return 0
	case 4096:
		return 1
	default:
		return 2
	}
}

// PackConfig encodes a configuration into the 7-bit configure register.
func PackConfig(cfg cache.Config) uint8 {
	v := uint8(sizeIndex(cfg))<<5 | uint8(lineIndex(cfg))<<3
	switch cfg.Ways {
	case 2:
		v |= 1 << 1
	case 4:
		v |= 2 << 1
	}
	if cfg.WayPredict {
		v |= 1
	}
	return v
}

// UnpackConfig decodes the configure register.
func UnpackConfig(v uint8) cache.Config {
	var cfg cache.Config
	switch v >> 5 & 3 {
	case 0:
		cfg.SizeBytes = 8192
	case 1:
		cfg.SizeBytes = 4096
	default:
		cfg.SizeBytes = 2048
	}
	switch v >> 3 & 3 {
	case 0:
		cfg.LineBytes = 16
	case 1:
		cfg.LineBytes = 32
	default:
		cfg.LineBytes = 64
	}
	switch v >> 1 & 3 {
	case 1:
		cfg.Ways = 2
	case 2:
		cfg.Ways = 4
	default:
		cfg.Ways = 1
	}
	cfg.WayPredict = v&1 != 0
	return cfg
}

// FSMD is the cycle-level tuner hardware model.
type FSMD struct {
	// Regs is the datapath state.
	Regs Registers
	// MultiplierCycles is the latency of the slow sequential multiplier;
	// the paper's gate-level simulation reports 64 cycles per whole
	// configuration evaluation: 3 multiplies x 16 + FSM/add/compare
	// overhead (see EvaluationCycles).
	MultiplierCycles int
	// TotalCycles accumulates over a search.
	TotalCycles uint64
	// NumSearch counts configurations evaluated (Equation 2's input).
	NumSearch int
	// Saturated reports whether any accumulation clipped at 32 bits.
	Saturated bool
}

// NewFSMD loads the fifteen constant registers from the energy model.
func NewFSMD(p *energy.Params) *FSMD {
	f := &FSMD{MultiplierCycles: 16}
	toFixed := func(j float64) uint16 {
		v := j / FixedPointUnit
		if v >= (1<<regBits)-1 {
			return (1 << regBits) - 1
		}
		if v < 0 {
			return 0
		}
		return uint16(v + 0.5)
	}
	hit := p.HitTable()
	f.Regs.HitEnergy[0] = toFixed(hit[energy.SizeAssoc{SizeBytes: 8192, Ways: 4}])
	f.Regs.HitEnergy[1] = toFixed(hit[energy.SizeAssoc{SizeBytes: 8192, Ways: 2}])
	f.Regs.HitEnergy[2] = toFixed(hit[energy.SizeAssoc{SizeBytes: 8192, Ways: 1}])
	f.Regs.HitEnergy[3] = toFixed(hit[energy.SizeAssoc{SizeBytes: 4096, Ways: 2}])
	f.Regs.HitEnergy[4] = toFixed(hit[energy.SizeAssoc{SizeBytes: 4096, Ways: 1}])
	f.Regs.HitEnergy[5] = toFixed(hit[energy.SizeAssoc{SizeBytes: 2048, Ways: 1}])
	miss := p.MissTable()
	f.Regs.MissEnergy[0] = toFixed(miss[16])
	f.Regs.MissEnergy[1] = toFixed(miss[32])
	f.Regs.MissEnergy[2] = toFixed(miss[64])
	static := p.StaticTable()
	f.Regs.StaticEnergy[0] = toFixed(static[8192])
	f.Regs.StaticEnergy[1] = toFixed(static[4096])
	f.Regs.StaticEnergy[2] = toFixed(static[2048])
	return f
}

// satMulAdd is one pass through the shared multiplier plus accumulate, with
// 32-bit saturation.
func (f *FSMD) satMulAdd(acc uint32, a uint32, b uint16) uint32 {
	prod := uint64(a) * uint64(b)
	sum := uint64(acc) + prod
	if sum >= 1<<accBits {
		f.Saturated = true
		return 1<<accBits - 1
	}
	return uint32(sum)
}

// MeasurementFromStats converts one window's cache counters into the three
// collection registers. With way prediction enabled, the hits register
// counts way reads (a correct prediction reads one way; a misprediction
// re-reads all ways) so that the existing one-way hit-energy register prices
// the window without extra datapath state — the small overcount of the
// shared output stage on mispredictions is the model's only approximation.
func MeasurementFromStats(cfg cache.Config, st cache.Stats, p *energy.Params) Measurement {
	clip := func(v uint64) uint32 {
		if v > 1<<32-1 {
			return 1<<32 - 1
		}
		return uint32(v)
	}
	hits := st.Accesses
	if cfg.WayPredict && cfg.Ways > 1 {
		hits = st.PredHits + st.PredMisses*uint64(1+cfg.Ways)
		// The measurement logic also folds the predictor-table access
		// overhead into the way-read count, scaled by the one-way
		// access energy, so the three-multiplier datapath needs no
		// extra register.
		one := p.OneWayEnergy(cfg.SizeBytes)
		hits += uint64(float64(st.Accesses) * p.PredictorOverheadEnergy / one)
	}
	return Measurement{
		Hits:   clip(hits),
		Misses: clip(st.Misses),
		Cycles: clip(p.Cycles(cfg, st)),
	}
}

// EvaluateConfig runs the CSM for one configuration's measurement: three
// sequential multiplications (hits x E_hit, misses x E_miss,
// cycles x E_static) accumulated into the energy register, then the
// comparison against the lowest register. Returns the fixed-point energy.
func (f *FSMD) EvaluateConfig(cfg cache.Config, m Measurement) uint32 {
	f.Regs.Hits, f.Regs.Misses, f.Regs.Cycles = m.Hits, m.Misses, m.Cycles
	hitIdx := sizeAssocIndex(cfg)
	if cfg.WayPredict && cfg.Ways > 1 {
		// Way reads are priced at the one-way access energy of the
		// current size (see MeasurementFromStats).
		oneWay := cfg
		oneWay.Ways = 1
		oneWay.WayPredict = false
		hitIdx = sizeAssocIndex(oneWay)
	}
	var acc uint32
	// CSM C1..C3: one multiplier pass each.
	acc = f.satMulAdd(acc, m.Hits, f.Regs.HitEnergy[hitIdx])
	acc = f.satMulAdd(acc, m.Misses, f.Regs.MissEnergy[lineIndex(cfg)])
	acc = f.satMulAdd(acc, m.Cycles, f.Regs.StaticEnergy[sizeIndex(cfg)])
	f.Regs.Energy = acc
	f.TotalCycles += uint64(f.EvaluationCycles())
	f.NumSearch++
	return acc
}

// EvaluationCycles is the cycle cost of evaluating one configuration: the
// paper's gate-level simulation reports 64 (three 16-cycle multiplier
// passes plus FSM, accumulate and compare overhead).
func (f *FSMD) EvaluationCycles() int {
	return 3*f.MultiplierCycles + 16
}

// ToJoules converts a fixed-point energy register value.
func ToJoules(v uint32) float64 { return float64(v) * FixedPointUnit }

// Run walks the PSM/VSM over the heuristic's search using measure for each
// window and returns the selected configuration. It mirrors Search with the
// PaperOrder but performs all energy arithmetic in the datapath's fixed
// point, so its decisions are exactly what the hardware would take.
func (f *FSMD) Run(measure MeasureFunc) cache.Config {
	eval := EvaluatorFunc(func(cfg cache.Config) EvalResult {
		e := f.EvaluateConfig(cfg, measure(cfg))
		if f.Regs.Lowest == 0 || e < f.Regs.Lowest {
			f.Regs.Lowest = e
			f.Regs.Config = PackConfig(cfg)
		}
		return EvalResult{Cfg: cfg, Energy: ToJoules(e)}
	})
	res := Search(eval, PaperOrder)
	// The PSM's final state drives the configure register with the best
	// configuration seen.
	f.Regs.Config = PackConfig(res.Best.Cfg)
	return res.Best.Cfg
}

// String summarises datapath state.
func (f *FSMD) String() string {
	return fmt.Sprintf("fsmd: %d configs, %d cycles, lowest=%.2f nJ, config=%07b",
		f.NumSearch, f.TotalCycles, ToJoules(f.Regs.Lowest)*1e9, f.Regs.Config)
}
