package tuner

import (
	"reflect"
	"sync"
	"testing"

	"selftune/internal/cache"
	"selftune/internal/energy"
	"selftune/internal/trace"
	"selftune/internal/workload"
)

// TestEvaluatorsSafeUnderConcurrentEvaluate exercises the memoisation of
// both trace-replay evaluators from many goroutines at once — run under
// `go test -race` this pins the engine rebase's concurrency guarantee (the
// seed's map-based memo was unsafe here) — and checks the shared evaluators
// still agree with fresh serial ones afterwards.
func TestEvaluatorsSafeUnderConcurrentEvaluate(t *testing.T) {
	p := energy.DefaultParams()
	prof, _ := workload.ByName("ucbqsort")
	_, data := trace.Split(trace.NewSliceSource(prof.Generate(20_000)))
	geo := cache.FourBank()

	ev := NewTraceEvaluator(data, p)
	sev := NewScalableEvaluator(geo, data, p)
	configs := cache.AllConfigs()

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Start each goroutine at a different offset so some
			// collide on in-flight configurations and others race
			// ahead.
			for i := range configs {
				cfg := configs[(i+g*3)%len(configs)]
				ev.Evaluate(cfg)
				sev.Evaluate(cfg)
			}
			// Concurrent searches share the same memo.
			SearchPaper(ev)
			ExhaustiveWorkers(sev, configs, 4)
		}(g)
	}
	wg.Wait()

	fresh := NewTraceEvaluator(data, p)
	sfresh := NewScalableEvaluator(geo, data, p)
	for _, cfg := range configs {
		if got, want := ev.Evaluate(cfg), fresh.Evaluate(cfg); !reflect.DeepEqual(got, want) {
			t.Errorf("TraceEvaluator %v drifted under concurrency: %+v vs %+v", cfg, got, want)
		}
		if got, want := sev.Evaluate(cfg), sfresh.Evaluate(cfg); !reflect.DeepEqual(got, want) {
			t.Errorf("ScalableEvaluator %v drifted under concurrency: %+v vs %+v", cfg, got, want)
		}
	}
}

// TestExhaustiveWorkersMatchesSerial pins that the parallel exhaustive
// sweep returns the serial sweep's SearchResult bit for bit, through the
// public tuner API (the engine-level property test covers the raw results).
func TestExhaustiveWorkersMatchesSerial(t *testing.T) {
	p := energy.DefaultParams()
	prof, _ := workload.ByName("g721")
	inst, _ := trace.Split(trace.NewSliceSource(prof.Generate(20_000)))
	configs := cache.AllConfigs()

	serial := ExhaustiveWorkers(NewTraceEvaluator(inst, p), configs, 1)
	parallel := ExhaustiveWorkers(NewTraceEvaluator(inst, p), configs, 8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("parallel exhaustive sweep diverged from serial:\nbest %v vs %v", parallel.Best.Cfg, serial.Best.Cfg)
	}
	if got := Exhaustive(NewTraceEvaluator(inst, p)); !reflect.DeepEqual(got, serial) {
		t.Errorf("Exhaustive (default workers) diverged from serial")
	}
}
