package tuner

import (
	"selftune/internal/cache"
	"selftune/internal/energy"
	"selftune/internal/trace"
)

// FlushAblationResult quantifies §4's flush-cost comparison: searching the
// cache sizes largest-first forces the dirty contents of deactivated ways
// to be written back at every shrink, which the paper reports costs tens of
// thousands of times the tuner's own search energy.
type FlushAblationResult struct {
	// SettleWritebacks is the number of dirty 16 B lines written back by
	// the shrinking transitions.
	SettleWritebacks uint64
	// WritebackEnergy is their total energy.
	WritebackEnergy float64
	// TunerEnergy is the Equation 2 energy of the heuristic search that
	// avoids them (same windows, smallest-first).
	TunerEnergy float64
	// Ratio is WritebackEnergy / TunerEnergy.
	Ratio float64
}

// FlushAblation replays the data stream through a live cache while stepping
// the size largest-first (8 KB -> 4 KB -> 2 KB at one way), measuring the
// writebacks each way shutdown forces, and compares their energy with the
// tuner hardware energy of the paper-ordered search over the same stream.
func FlushAblation(accs []trace.Access, p *energy.Params, window int) FlushAblationResult {
	if window <= 0 || window > len(accs) {
		window = len(accs) / 3
	}
	c := cache.MustConfigurable(cache.Config{SizeBytes: 8192, Ways: 1, LineBytes: 16})
	c.AllowShrink = true
	pos := 0
	runWindow := func() {
		for n := 0; n < window && pos < len(accs); n++ {
			c.Access(accs[pos].Addr, accs[pos].IsWrite())
			pos++
		}
	}
	runWindow()
	c.SetConfig(cache.Config{SizeBytes: 4096, Ways: 1, LineBytes: 16})
	runWindow()
	c.SetConfig(cache.MinConfig())
	runWindow()

	var res FlushAblationResult
	res.SettleWritebacks = c.Stats().SettleWritebacks
	res.WritebackEnergy = float64(res.SettleWritebacks) * p.WritebackEnergy()

	// The heuristic search over the same stream: number of configurations
	// examined times the hardware's per-configuration energy.
	search := SearchPaper(NewTraceEvaluator(accs, p))
	hw := NewHardwareModel()
	f := NewFSMD(p)
	res.TunerEnergy = hw.SearchEnergy(p, f.EvaluationCycles(), search.NumExamined())
	if res.TunerEnergy > 0 {
		res.Ratio = res.WritebackEnergy / res.TunerEnergy
	}
	return res
}
