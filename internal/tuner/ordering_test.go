package tuner

import (
	"sort"
	"testing"

	"selftune/internal/energy"
	"selftune/internal/engine"
	"selftune/internal/trace"
	"selftune/internal/workload"
)

func TestAllOrdersEnumerates24(t *testing.T) {
	orders := AllOrders()
	if len(orders) != 24 {
		t.Fatalf("AllOrders = %d, want 24", len(orders))
	}
	seen := map[string]bool{}
	for _, o := range orders {
		name := OrderName(o)
		if seen[name] {
			t.Errorf("duplicate ordering %s", name)
		}
		seen[name] = true
		if len(o) != 4 {
			t.Errorf("ordering %s has %d params", name, len(o))
		}
	}
	if !seen["size>line>assoc>pred"] || !seen["line>assoc>pred>size"] {
		t.Error("paper and alternative orderings missing from enumeration")
	}
}

// TestOrderingTournament runs all 24 parameter orderings over the benchmark
// suite and checks the paper's §3.2 impact analysis: the size-first
// orderings dominate, and the paper's specific ordering is among the best.
func TestOrderingTournament(t *testing.T) {
	if testing.Short() {
		t.Skip("tournament is slow")
	}
	p := energy.DefaultParams()
	type stream struct {
		ev  *TraceEvaluator
		opt float64
	}
	profiles := workload.Profiles()
	perProfile := engine.Parallel(len(profiles), 0, func(i int) []stream {
		accs := profiles[i].Generate(100_000)
		inst, data := trace.Split(trace.NewSliceSource(accs))
		var out []stream
		for _, s := range [][]trace.Access{inst, data} {
			ev := NewTraceEvaluator(s, p)
			out = append(out, stream{ev, Exhaustive(ev).Best.Energy})
		}
		return out
	})
	var streams []stream
	for _, ss := range perProfile {
		streams = append(streams, ss...)
	}

	type entry struct {
		name   string
		excess float64 // summed heuristic/optimal - 1
		misses int
	}
	// Each ordering's searches share the streams' memoised evaluators, so
	// the orderings fan out safely and every config replays at most once.
	orders := AllOrders()
	table := engine.Parallel(len(orders), 0, func(oi int) entry {
		order := orders[oi]
		e := entry{name: OrderName(order)}
		for _, s := range streams {
			res := Search(s.ev, order)
			e.excess += res.Best.Energy/s.opt - 1
			if res.Best.Energy > s.opt*1.0001 {
				e.misses++
			}
		}
		return e
	})
	sort.Slice(table, func(i, j int) bool { return table[i].excess < table[j].excess })

	rankPaper := -1
	for i, e := range table {
		if e.name == OrderName(PaperOrder) {
			rankPaper = i
		}
		t.Logf("#%2d %-26s misses=%2d summed-excess=%.3f", i+1, e.name, e.misses, e.excess)
	}
	if rankPaper < 0 {
		t.Fatal("paper ordering missing from tournament")
	}
	if rankPaper >= len(table)/3 {
		t.Errorf("paper ordering ranked #%d of %d; §3.2's impact analysis says it should lead", rankPaper+1, len(table))
	}
	// Size-first orderings should fill the top of the table.
	sizeFirstInTop := 0
	for _, e := range table[:6] {
		if len(e.name) >= 4 && e.name[:4] == "size" {
			sizeFirstInTop++
		}
	}
	if sizeFirstInTop < 4 {
		t.Errorf("only %d of the top 6 orderings are size-first", sizeFirstInTop)
	}
}
