package tuner

import (
	"testing"

	"selftune/internal/cache"
	"selftune/internal/energy"
	"selftune/internal/trace"
	"selftune/internal/workload"
)

func runOnline(t *testing.T, name string, window uint64, budget int) (*Online, *workload.Profile) {
	t.Helper()
	prof, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("no profile %q", name)
	}
	c := cache.MustConfigurable(cache.MinConfig())
	o := NewOnline(c, energy.DefaultParams(), window)
	src := trace.OnlyData(prof.NewSource())
	for i := 0; i < budget && !o.Done(); i++ {
		a, _ := src.Next()
		o.Access(a.Addr, a.IsWrite())
	}
	return o, prof
}

func TestOnlineCompletesAndSettles(t *testing.T) {
	o, _ := runOnline(t, "crc", 5000, 500_000)
	if !o.Done() {
		t.Fatal("online tuning did not complete within budget")
	}
	res := o.Result()
	if res.NumExamined() < 2 || res.NumExamined() > 9 {
		t.Errorf("examined %d configurations, want the heuristic's 2-9 range", res.NumExamined())
	}
	if o.Cache().Config() != res.Best.Cfg {
		t.Errorf("cache settled on %v, search chose %v", o.Cache().Config(), res.Best.Cfg)
	}
}

func TestOnlineNeverFullFlushes(t *testing.T) {
	// The session may write back a handful of dirty lines when a
	// rejected larger size is retreated from, but never a full flush
	// (512 lines).
	o, _ := runOnline(t, "blit", 4000, 500_000)
	if !o.Done() {
		t.Fatal("did not complete")
	}
	if wb := o.SettleWritebacks(); wb > 512 {
		t.Errorf("settle writebacks = %d, comparable to a full flush", wb)
	}
}

func TestOnlineInstructionStreamNeedsNoWritebacks(t *testing.T) {
	prof, _ := workload.ByName("g721")
	c := cache.MustConfigurable(cache.MinConfig())
	o := NewOnline(c, energy.DefaultParams(), 4000)
	src := trace.OnlyInst(prof.NewSource())
	for i := 0; i < 500_000 && !o.Done(); i++ {
		a, _ := src.Next()
		o.Access(a.Addr, false)
	}
	if !o.Done() {
		t.Fatal("did not complete")
	}
	if wb := o.SettleWritebacks(); wb != 0 {
		t.Errorf("instruction-cache tuning wrote back %d lines; fetches are never dirty", wb)
	}
}

func TestOnlineChoiceIsNearOfflineQuality(t *testing.T) {
	// The online tuner measures successive warm windows rather than the
	// whole trace, so its choice can legitimately differ from the
	// offline search's — but the configuration it settles on must be
	// close in whole-trace energy to the offline optimum.
	for _, name := range []string{"crc", "bcnt", "adpcm", "blit"} {
		prof, _ := workload.ByName(name)
		p := energy.DefaultParams()

		steady := prof.Generate(1_200_000)[prof.InitAccesses:]
		_, data := trace.Split(trace.NewSliceSource(steady))
		ev := NewTraceEvaluator(data, p)
		offline := SearchPaper(ev)

		c := cache.MustConfigurable(cache.MinConfig())
		o := NewOnline(c, p, 10_000)
		for _, a := range data {
			if o.Done() {
				break
			}
			o.Access(a.Addr, a.IsWrite())
		}
		if !o.Done() {
			t.Fatalf("%s: online tuning did not complete", name)
		}
		got := o.Result().Best.Cfg
		ratio := ev.Evaluate(got).Energy / offline.Best.Energy
		if ratio > 1.30 {
			t.Errorf("%s: online choice %v is %.0f%% worse than offline %v",
				name, got, (ratio-1)*100, offline.Best.Cfg)
		}
	}
}

func TestOnlineReconfigurationCountMatchesExamined(t *testing.T) {
	o, _ := runOnline(t, "fir", 3000, 500_000)
	if !o.Done() {
		t.Fatal("did not complete")
	}
	// Each examined configuration required at most one reconfiguration
	// (the first window runs on the starting configuration), plus the
	// final settle.
	// Reconfigurations are counted in the cache stats, which reset per
	// window; just sanity-check the session ran multiple windows.
	if o.Result().NumExamined() < 2 {
		t.Errorf("examined %d, want >= 2", o.Result().NumExamined())
	}
}

func TestOnlineAbort(t *testing.T) {
	prof, _ := workload.ByName("fir")
	c := cache.MustConfigurable(cache.MinConfig())
	o := NewOnline(c, energy.DefaultParams(), 5000)
	src := trace.OnlyData(prof.NewSource())
	for i := 0; i < 7000; i++ { // mid-session
		a, _ := src.Next()
		o.Access(a.Addr, a.IsWrite())
	}
	if o.Done() {
		t.Skip("session finished before abort point")
	}
	o.Abort()
	if !o.Aborted() || o.Done() {
		t.Fatalf("aborted=%v done=%v after Abort", o.Aborted(), o.Done())
	}
	// The cache keeps working as a plain cache.
	cfg := o.Cache().Config()
	for i := 0; i < 5000; i++ {
		a, _ := src.Next()
		o.Access(a.Addr, a.IsWrite())
	}
	if o.Cache().Config() != cfg {
		t.Error("configuration changed after abort")
	}
	o.Abort() // idempotent
}
