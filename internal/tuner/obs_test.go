package tuner

import (
	"bytes"
	"fmt"
	"testing"

	"selftune/internal/cache"
	"selftune/internal/energy"
	"selftune/internal/obs"
	"selftune/internal/trace"
	"selftune/internal/workload"
)

func obsStream(t *testing.T, n int) []trace.Access {
	t.Helper()
	prof, ok := workload.ByName("jpeg")
	if !ok {
		prof = workload.Profiles()[0]
	}
	_, data := trace.Split(trace.NewSliceSource(prof.Generate(n)))
	if len(data) == 0 {
		t.Fatal("no data stream")
	}
	return data
}

// The trace hook observes; it must not steer. A traced search returns the
// same result as an untraced one, and the step stream is exactly the
// heuristic's decision sequence: contiguous ordinals, initial measurement
// first, a stop step closing every sweep that ended on a worse reading.
func TestSearchTracedObservesWithoutSteering(t *testing.T) {
	data := obsStream(t, 60_000)
	p := energy.DefaultParams()

	plain := SearchPaper(NewTraceEvaluator(data, p))
	var steps []SearchStep
	traced := SearchTraced(NewTraceEvaluator(data, p), PaperOrder, DefaultSpace(), func(st SearchStep) {
		steps = append(steps, st)
	})

	if plain.Best.Cfg != traced.Best.Cfg || plain.Best.Energy != traced.Best.Energy {
		t.Fatalf("tracing changed the result: %v vs %v", plain.Best, traced.Best)
	}
	if plain.NumExamined() != traced.NumExamined() {
		t.Fatalf("tracing changed examined count: %d vs %d", plain.NumExamined(), traced.NumExamined())
	}
	if len(steps) == 0 {
		t.Fatal("no steps traced")
	}
	if steps[0].Phase != ParamInitial || steps[0].Cfg != cache.MinConfig() {
		t.Fatalf("first step is not the initial measurement: %+v", steps[0])
	}
	unique := map[cache.Config]bool{}
	for i, st := range steps {
		if st.Step != i {
			t.Fatalf("step ordinals not contiguous: step %d at index %d", st.Step, i)
		}
		unique[st.Cfg] = true
		if st.Improved && st.Stop {
			t.Fatalf("step %d both improved and stopped: %+v", i, st)
		}
	}
	if len(unique) != traced.NumExamined() {
		t.Fatalf("steps cover %d unique configs, Examined has %d", len(unique), traced.NumExamined())
	}
	// The paper's claim: the heuristic examines a small fraction of the
	// 27-configuration space (5-7 in Fig. 6; 8 is the structural maximum).
	if n := traced.NumExamined(); n > 8 {
		t.Fatalf("heuristic examined %d configurations, structural maximum is 8", n)
	}
}

// runObserved drives a full online session over accs and returns the settled
// session plus its recorded JSONL bytes.
func runObserved(t *testing.T, accs []trace.Access, window uint64, rec obs.Recorder) *Online {
	t.Helper()
	c := cache.MustConfigurable(cache.MinConfig())
	o := NewOnlineObserved(c, energy.DefaultParams(), window, nil, rec, 0)
	defer o.Close()
	for _, a := range accs {
		o.Access(a.Addr, a.IsWrite())
		if o.Done() {
			break
		}
	}
	if !o.Done() {
		t.Fatal("stream too short: session never settled")
	}
	return o
}

// An observed online session must settle identically to an unobserved one,
// and two observed runs must produce byte-identical event logs.
func TestOnlineObservedInertAndDeterministic(t *testing.T) {
	accs := obsStream(t, 400_000)
	const window = 2_000

	silent := runObserved(t, accs, window, nil)
	var logA, logB bytes.Buffer
	loudA := runObserved(t, accs, window, obs.NewJSONL(&logA))
	runObserved(t, accs, window, obs.NewJSONL(&logB))

	if silent.Result().Best.Cfg != loudA.Result().Best.Cfg ||
		silent.Result().Best.Energy != loudA.Result().Best.Energy {
		t.Fatalf("recording changed the settled outcome: %v vs %v",
			silent.Result().Best, loudA.Result().Best)
	}
	if logA.String() != logB.String() {
		t.Fatalf("two identical observed runs produced different logs:\n%s\nvs\n%s", logA.String(), logB.String())
	}

	evs, err := obs.ReadEvents(&logA)
	if err != nil {
		t.Fatal(err)
	}
	var stepEvents, settleEvents int
	for _, ev := range evs {
		switch ev.Name {
		case "tuner.step":
			stepEvents++
		case "tuner.settle":
			settleEvents++
			if ev.Config != loudA.Result().Best.Cfg.String() {
				t.Fatalf("settle event config %q, session settled on %v", ev.Config, loudA.Result().Best.Cfg)
			}
			if int(ev.Float("examined")) != loudA.Result().NumExamined() {
				t.Fatalf("settle event examined %v, want %d", ev.Float("examined"), loudA.Result().NumExamined())
			}
		}
	}
	if stepEvents == 0 || settleEvents != 1 {
		t.Fatalf("got %d step and %d settle events", stepEvents, settleEvents)
	}
}

// A killed-and-resumed session must re-emit the replayed prefix's events
// with coordinates identical to the first life's, so deduplication by
// (session, window, step) reconstructs the uninterrupted log exactly.
func TestResumeReEmitsIdenticalStepEvents(t *testing.T) {
	accs := obsStream(t, 400_000)
	const window = 2_000
	p := energy.DefaultParams()

	var unbroken bytes.Buffer
	base := runObserved(t, accs, window, obs.NewJSONL(&unbroken))

	// Killed run: drive to the first boundary after two completed windows,
	// snapshot, rebuild from the image, resume, finish.
	var broken bytes.Buffer
	rec := obs.NewJSONL(&broken)
	c := cache.MustConfigurable(cache.MinConfig())
	o := NewOnlineObserved(c, p, window, nil, rec, 0)
	i := 0
	for ; ; i++ {
		o.Access(accs[i].Addr, accs[i].IsWrite())
		if o.CompletedWindows() >= 2 && o.AtWindowBoundary() {
			i++
			break
		}
	}
	snap, err := o.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	img, err := c.Image()
	if err != nil {
		t.Fatal(err)
	}
	o.Close()

	c2, err := cache.RestoreConfigurable(img)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := ResumeOnlineObserved(c2, p, snap, nil, rec, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer o2.Close()
	for ; i < len(accs) && !o2.Done(); i++ {
		o2.Access(accs[i].Addr, accs[i].IsWrite())
	}
	if !o2.Done() {
		t.Fatal("resumed session never settled")
	}
	if o2.Result().Best.Cfg != base.Result().Best.Cfg {
		t.Fatalf("resumed session settled on %v, baseline on %v", o2.Result().Best.Cfg, base.Result().Best.Cfg)
	}

	key := func(e obs.RawEvent) string {
		return fmt.Sprintf("%s/%d/%d/%d/%s/%v/%v", e.Name, e.Session, e.Window, e.Step,
			e.Config, e.Float("energy"), e.Bool("stop"))
	}
	baseEvs, err := obs.ReadEvents(&unbroken)
	if err != nil {
		t.Fatal(err)
	}
	killEvs, err := obs.ReadEvents(&broken)
	if err != nil {
		t.Fatal(err)
	}
	// Dedupe the killed run's log by coordinates, preserving first-seen
	// order; re-emitted events must be identical so dedup loses nothing.
	seen := map[string]bool{}
	var dedup []string
	for _, e := range killEvs {
		k := key(e)
		if !seen[k] {
			seen[k] = true
			dedup = append(dedup, k)
		}
	}
	if len(dedup) != len(baseEvs) {
		t.Fatalf("deduped killed-run log has %d events, baseline %d", len(dedup), len(baseEvs))
	}
	for j, e := range baseEvs {
		if dedup[j] != key(e) {
			t.Fatalf("event %d diverged:\nbaseline %s\nresumed  %s", j, key(e), dedup[j])
		}
	}
}
