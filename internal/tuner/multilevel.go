package tuner

import "fmt"

// This file generalises the heuristic to a multilevel hierarchy (paper
// §3.4): with n tunable parameters of m values each, brute force examines
// m^n combinations while the one-parameter-at-a-time heuristic examines at
// most m*n. The paper's example tunes the line sizes of 16 KB 8-way L1
// instruction and data caches and a 256 KB 8-way unified L2.

// LevelParam is one tunable parameter of a hierarchy.
type LevelParam struct {
	// Name identifies the parameter (e.g. "L1I line").
	Name string
	// Values are the candidate settings in sweep order.
	Values []int
}

// MultilevelResult records a hierarchy search.
type MultilevelResult struct {
	// Best holds the chosen value per parameter, in input order.
	Best []int
	// BestEnergy is the energy of the chosen combination.
	BestEnergy float64
	// Examined is the number of combinations measured.
	Examined int
	// BruteForceSize is the full cross-product size for comparison.
	BruteForceSize int
}

// MultilevelSearch tunes each parameter in turn with the others held at
// their current best, sweeping values in order and stopping a sweep at the
// first value that fails to improve — the paper's heuristic applied per
// level. eval receives one value per parameter.
func MultilevelSearch(eval func(values []int) float64, params []LevelParam) MultilevelResult {
	if len(params) == 0 {
		return MultilevelResult{}
	}
	cur := make([]int, len(params))
	for i, p := range params {
		if len(p.Values) == 0 {
			panic(fmt.Sprintf("tuner: parameter %q has no values", p.Name))
		}
		cur[i] = p.Values[0]
	}
	res := MultilevelResult{BruteForceSize: 1}
	for _, p := range params {
		res.BruteForceSize *= len(p.Values)
	}
	memo := map[string]float64{}
	measure := func(values []int) float64 {
		key := fmt.Sprint(values)
		if e, ok := memo[key]; ok {
			return e
		}
		e := eval(values)
		memo[key] = e
		res.Examined++
		return e
	}

	bestE := measure(cur)
	for i, p := range params {
		for _, v := range p.Values[1:] {
			cand := append([]int(nil), cur...)
			cand[i] = v
			e := measure(cand)
			if e < bestE {
				bestE = e
				cur = cand
			} else {
				break
			}
		}
	}
	res.Best = cur
	res.BestEnergy = bestE
	return res
}

// MultilevelBruteForce measures every combination (for validating the
// heuristic's choice quality in tests and benches).
func MultilevelBruteForce(eval func(values []int) float64, params []LevelParam) MultilevelResult {
	res := MultilevelResult{BruteForceSize: 1}
	for _, p := range params {
		res.BruteForceSize *= len(p.Values)
	}
	cur := make([]int, len(params))
	var best []int
	bestE := 0.0
	var walk func(i int)
	walk = func(i int) {
		if i == len(params) {
			e := eval(cur)
			res.Examined++
			if best == nil || e < bestE {
				best = append([]int(nil), cur...)
				bestE = e
			}
			return
		}
		for _, v := range params[i].Values {
			cur[i] = v
			walk(i + 1)
		}
	}
	walk(0)
	res.Best = best
	res.BestEnergy = bestE
	return res
}
