package tuner

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"selftune/internal/cache"
	"selftune/internal/energy"
	"selftune/internal/trace"
	"selftune/internal/workload"
)

func TestPackUnpackConfig(t *testing.T) {
	for _, cfg := range cache.AllConfigs() {
		got := UnpackConfig(PackConfig(cfg))
		if got != cfg {
			t.Errorf("pack/unpack %v -> %v", cfg, got)
		}
	}
}

func TestQuickPackConfigRoundTrip(t *testing.T) {
	all := cache.AllConfigs()
	f := func(i uint) bool {
		cfg := all[i%uint(len(all))]
		return UnpackConfig(PackConfig(cfg)) == cfg
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(8))}); err != nil {
		t.Error(err)
	}
}

func TestFixedPointMatchesFloatModel(t *testing.T) {
	// The datapath's 16-bit fixed-point arithmetic must agree with the
	// floating-point Equation 1 closely enough to make the same
	// decisions. Writeback energy is outside the hardware's three-term
	// model, so compare against the float model minus that term.
	p := energy.DefaultParams()
	f := NewFSMD(p)
	prof, _ := workload.ByName("jpeg")
	accs := prof.Generate(80_000)
	for _, cfg := range cache.AllConfigs() {
		c := cache.MustConfigurable(cfg)
		for _, a := range accs {
			c.Access(a.Addr, a.IsWrite())
		}
		st := c.Stats()
		m := MeasurementFromStats(cfg, st, p)
		got := ToJoules(f.EvaluateConfig(cfg, m))
		b := p.Evaluate(cfg, st)
		want := b.Total() - b.Writeback
		if math.Abs(got-want)/want > 0.08 {
			t.Errorf("%v: fixed point %.3g J vs float %.3g J (>8%% apart)", cfg, got, want)
		}
	}
	if f.Saturated {
		t.Error("accumulator saturated on a normal window")
	}
}

func TestFSMDCycleCost(t *testing.T) {
	p := energy.DefaultParams()
	f := NewFSMD(p)
	if got := f.EvaluationCycles(); got != 64 {
		t.Errorf("EvaluationCycles = %d, want the paper's 64", got)
	}
	f.EvaluateConfig(cache.MinConfig(), Measurement{Hits: 100, Misses: 5, Cycles: 220})
	f.EvaluateConfig(cache.BaseConfig(), Measurement{Hits: 100, Misses: 2, Cycles: 160})
	if f.TotalCycles != 128 || f.NumSearch != 2 {
		t.Errorf("after two evals: cycles=%d searches=%d", f.TotalCycles, f.NumSearch)
	}
}

func TestFSMDRunMatchesSoftwareHeuristic(t *testing.T) {
	// The hardware walk (fixed-point energies) must select the same
	// configuration as the floating-point software search.
	p := energy.DefaultParams()
	for _, name := range []string{"crc", "jpeg", "g721", "blit"} {
		prof, _ := workload.ByName(name)
		accs := prof.Generate(100_000)
		inst, data := trace.Split(trace.NewSliceSource(accs))
		for _, stream := range [][]trace.Access{inst, data} {
			ev := NewTraceEvaluator(stream, p)
			soft := SearchPaper(ev)
			f := NewFSMD(p)
			hard := f.Run(func(cfg cache.Config) Measurement {
				return MeasurementFromStats(cfg, ev.Evaluate(cfg).Stats, p)
			})
			if hard != soft.Best.Cfg {
				t.Errorf("%s: hardware chose %v, software chose %v", name, hard, soft.Best.Cfg)
			}
			if UnpackConfig(f.Regs.Config) != hard {
				t.Errorf("%s: configure register holds %v, want %v",
					name, UnpackConfig(f.Regs.Config), hard)
			}
		}
	}
}

func TestFSMDSaturation(t *testing.T) {
	p := energy.DefaultParams()
	f := NewFSMD(p)
	f.EvaluateConfig(cache.BaseConfig(), Measurement{Hits: 1 << 31, Misses: 1 << 31, Cycles: 1 << 31})
	if !f.Saturated {
		t.Error("oversized window did not saturate")
	}
	if f.Regs.Energy != 1<<32-1 {
		t.Errorf("saturated accumulator = %d, want max", f.Regs.Energy)
	}
}

func TestHardwareModelMatchesPaperScale(t *testing.T) {
	h := NewHardwareModel()
	p := energy.DefaultParams()
	tech := p.Tech

	if g := h.Gates(); g < 3000 || g > 5500 {
		t.Errorf("gate count = %d, want ~4000 (paper §4)", g)
	}
	if a := h.AreaMM2(tech); a < 0.02 || a > 0.06 {
		t.Errorf("area = %.4f mm2, want ~0.039 (paper §4)", a)
	}
	if o := h.AreaOverheadVsMIPS(tech); o < 0.01 || o > 0.06 {
		t.Errorf("area overhead = %.1f%%, want ~3%%", o*100)
	}
	if o := h.PowerOverheadVsMIPS(); math.Abs(o-0.0054) > 0.004 {
		t.Errorf("power overhead = %.2f%%, want ~0.5%%", o*100)
	}
	// A ~5.4-configuration search at 64 cycles and 2.69 mW lands in the
	// paper's nanojoule range.
	e := h.SearchEnergy(p, 64, 6)
	if e < 1e-9 || e > 2e-8 {
		t.Errorf("search energy = %g J, want a few nJ", e)
	}
}

func TestFlushAblationDwarfsTunerEnergy(t *testing.T) {
	// §4: largest-first size search costs orders of magnitude more in
	// forced writebacks than the whole heuristic search costs in tuner
	// energy.
	p := energy.DefaultParams()
	prof, _ := workload.ByName("blit") // write-heavy data stream
	_, data := trace.Split(trace.NewSliceSource(prof.Generate(150_000)))
	res := FlushAblation(data, p, 0)
	if res.SettleWritebacks == 0 {
		t.Fatal("largest-first search forced no writebacks on a write-heavy stream")
	}
	if res.Ratio < 100 {
		t.Errorf("writeback/tuner energy ratio = %.0f, want >> 100 (paper: ~48,000x)", res.Ratio)
	}
	t.Logf("settle writebacks=%d energy=%.3g J tuner=%.3g J ratio=%.0f",
		res.SettleWritebacks, res.WritebackEnergy, res.TunerEnergy, res.Ratio)
}

func TestMultilevelSearchSumsNotProducts(t *testing.T) {
	// §3.4's example: three line-size parameters with four values each;
	// brute force 64, heuristic at most 12.
	params := []LevelParam{
		{Name: "L1I line", Values: []int{8, 16, 32, 64}},
		{Name: "L1D line", Values: []int{8, 16, 32, 64}},
		{Name: "L2 line", Values: []int{64, 128, 256, 512}},
	}
	// Separable convex energy: each parameter has an independent best.
	eval := func(v []int) float64 {
		f := func(x, best int) float64 { d := float64(x - best); return d * d }
		return f(v[0], 32) + f(v[1], 16) + f(v[2], 128)
	}
	res := MultilevelSearch(eval, params)
	if res.BruteForceSize != 64 {
		t.Errorf("brute force size = %d, want 64", res.BruteForceSize)
	}
	if res.Examined > 12 {
		t.Errorf("heuristic examined %d, want <= 12 (sums not products)", res.Examined)
	}
	want := []int{32, 16, 128}
	for i := range want {
		if res.Best[i] != want[i] {
			t.Errorf("best[%d] = %d, want %d", i, res.Best[i], want[i])
		}
	}
	bf := MultilevelBruteForce(eval, params)
	if bf.Examined != 64 || bf.BestEnergy != res.BestEnergy {
		t.Errorf("brute force disagrees: %+v vs %+v", bf, res)
	}
}
