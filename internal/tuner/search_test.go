package tuner

import (
	"testing"

	"selftune/internal/cache"
	"selftune/internal/energy"
	"selftune/internal/trace"
	"selftune/internal/workload"
)

// tableEval builds an evaluator from an explicit energy table.
func tableEval(t *testing.T, energies map[string]float64) Evaluator {
	t.Helper()
	return EvaluatorFunc(func(cfg cache.Config) EvalResult {
		e, ok := energies[cfg.String()]
		if !ok {
			t.Fatalf("search evaluated unexpected config %v", cfg)
		}
		return EvalResult{Cfg: cfg, Energy: e}
	})
}

func TestSearchStopsWhenSizeGrowthStopsPaying(t *testing.T) {
	// bcnt-like: 2K best, 4K worse; line 32 better, 64 worse. The search
	// must examine exactly 4 configurations (Table 1's bcnt row).
	ev := tableEval(t, map[string]float64{
		"2K_1W_16B": 10, "4K_1W_16B": 12,
		"2K_1W_32B": 8, "2K_1W_64B": 9,
	})
	res := SearchPaper(ev)
	if res.Best.Cfg.String() != "2K_1W_32B" {
		t.Errorf("best = %v, want 2K_1W_32B", res.Best.Cfg)
	}
	if res.NumExamined() != 4 {
		t.Errorf("examined %d configs, want 4", res.NumExamined())
	}
}

func TestSearchFullSweep(t *testing.T) {
	// g721-like: everything improves monotonically; prediction helps.
	// 3 sizes + 2 lines + 2 assocs + 1 pred = 8 examined (Table 1 g721).
	ev := tableEval(t, map[string]float64{
		"2K_1W_16B": 100, "4K_1W_16B": 90, "8K_1W_16B": 80,
		"8K_1W_32B": 85,
		"8K_2W_16B": 70, "8K_4W_16B": 60,
		"8K_4W_16B_P": 50,
	})
	res := SearchPaper(ev)
	if res.Best.Cfg.String() != "8K_4W_16B_P" {
		t.Errorf("best = %v, want 8K_4W_16B_P", res.Best.Cfg)
	}
	if res.NumExamined() != 7 {
		t.Errorf("examined %d configs, want 7", res.NumExamined())
	}
}

func TestSearchDoesNotTryPredictionOnDirectMapped(t *testing.T) {
	ev := tableEval(t, map[string]float64{
		"2K_1W_16B": 10, "4K_1W_16B": 20,
		"2K_1W_32B": 15,
	})
	res := SearchPaper(ev)
	if res.Best.Cfg.String() != "2K_1W_16B" {
		t.Errorf("best = %v, want 2K_1W_16B", res.Best.Cfg)
	}
	for _, r := range res.Examined {
		if r.Cfg.WayPredict {
			t.Errorf("prediction examined on %v", r.Cfg)
		}
	}
}

func TestSearchRespectsSizeAssocConstraint(t *testing.T) {
	// When 4 KB wins the size sweep, the assoc sweep may only offer
	// 2-way (4-way needs 8 KB).
	ev := tableEval(t, map[string]float64{
		"2K_1W_16B": 100, "4K_1W_16B": 50, "8K_1W_16B": 60,
		"4K_1W_32B":   55,
		"4K_2W_16B":   40,
		"4K_2W_16B_P": 39,
	})
	res := SearchPaper(ev)
	if res.Best.Cfg.String() != "4K_2W_16B_P" {
		t.Errorf("best = %v, want 4K_2W_16B_P", res.Best.Cfg)
	}
}

func TestSearchNeverShrinksMidSweep(t *testing.T) {
	// Every examined transition relative to the previous examined config
	// must be flush-free growth, except retreats to the incumbent after
	// a failed probe (which the online tuner pays for at settle time).
	for _, prof := range workload.Profiles() {
		ev := NewTraceEvaluator(prof.Generate(60_000), energy.DefaultParams())
		res := SearchPaper(ev)
		best := res.Examined[0]
		for _, r := range res.Examined[1:] {
			if !best.Cfg.Grows(r.Cfg) {
				t.Errorf("%s: probe %v does not grow from incumbent %v",
					prof.Name, r.Cfg, best.Cfg)
			}
			if r.Energy < best.Energy {
				best = r
			}
		}
	}
}

func TestExhaustiveCoversAll27(t *testing.T) {
	ev := EvaluatorFunc(func(cfg cache.Config) EvalResult {
		return EvalResult{Cfg: cfg, Energy: float64(cfg.SizeBytes)}
	})
	res := Exhaustive(ev)
	if res.NumExamined() != 27 {
		t.Errorf("exhaustive examined %d, want 27", res.NumExamined())
	}
	if res.Best.Cfg.SizeBytes != 2048 {
		t.Errorf("exhaustive best = %v, want a 2K config", res.Best.Cfg)
	}
}

func TestHeuristicNearOptimalOnProfiles(t *testing.T) {
	// §4: the heuristic finds the optimum in nearly all cases and is
	// never more than a few percent worse.
	p := energy.DefaultParams()
	worst := 0.0
	misses := 0
	for _, prof := range workload.Profiles() {
		accs := prof.Generate(150_000)
		inst, data := trace.Split(trace.NewSliceSource(accs))
		for _, stream := range [][]trace.Access{inst, data} {
			ev := NewTraceEvaluator(stream, p)
			h := SearchPaper(ev)
			x := Exhaustive(ev)
			ratio := h.Best.Energy / x.Best.Energy
			if ratio > worst {
				worst = ratio
			}
			if h.Best.Cfg != x.Best.Cfg {
				misses++
			}
			if ratio > 1.15 {
				t.Errorf("%s: heuristic %v is %.1f%% worse than optimal %v",
					prof.Name, h.Best.Cfg, (ratio-1)*100, x.Best.Cfg)
			}
		}
	}
	t.Logf("heuristic missed the optimum on %d of %d streams; worst excess %.1f%%",
		misses, 2*len(workload.Profiles()), (worst-1)*100)
	if misses > 8 {
		t.Errorf("heuristic missed the optimum on %d streams; the paper reports nearly always optimal", misses)
	}
}

func TestAlternativeOrderIsWorse(t *testing.T) {
	// §4: the line/assoc/pred/size ordering misses the optimum far more
	// often than the paper ordering.
	p := energy.DefaultParams()
	paperMisses, altMisses := 0, 0
	for _, prof := range workload.Profiles() {
		accs := prof.Generate(120_000)
		inst, data := trace.Split(trace.NewSliceSource(accs))
		for _, stream := range [][]trace.Access{inst, data} {
			ev := NewTraceEvaluator(stream, p)
			opt := Exhaustive(ev).Best.Cfg
			if Search(ev, PaperOrder).Best.Cfg != opt {
				paperMisses++
			}
			if Search(ev, AlternativeOrder).Best.Cfg != opt {
				altMisses++
			}
		}
	}
	t.Logf("paper order missed %d, alternative order missed %d (of %d streams)",
		paperMisses, altMisses, 2*len(workload.Profiles()))
	if altMisses <= paperMisses {
		t.Errorf("alternative ordering (%d misses) not worse than paper ordering (%d misses)", altMisses, paperMisses)
	}
}

func TestSearchAverageExaminedMatchesPaperScale(t *testing.T) {
	// §4: the heuristic examines ~5.4-5.8 configurations on average,
	// versus 27 exhaustively.
	p := energy.DefaultParams()
	total := 0
	n := 0
	for _, prof := range workload.Profiles() {
		accs := prof.Generate(100_000)
		inst, data := trace.Split(trace.NewSliceSource(accs))
		for _, stream := range [][]trace.Access{inst, data} {
			total += SearchPaper(NewTraceEvaluator(stream, p)).NumExamined()
			n++
		}
	}
	avg := float64(total) / float64(n)
	t.Logf("average configurations examined: %.2f", avg)
	if avg < 3 || avg > 9 {
		t.Errorf("average examined = %.2f, want the paper's ~5-6 range", avg)
	}
}
