package tuner

import (
	"testing"

	"selftune/internal/cache"
	"selftune/internal/energy"
	"selftune/internal/trace"
	"selftune/internal/workload"
)

// TestOnlineSettleWritebackAccounting audits the session's settle-writeback
// counter against an independent mirror: a second cache fed the identical
// access stream, reconfigured at the identical points (observed as config
// changes on the session's cache), with its SettleWritebacks counter never
// reset. The two caches hold identical contents at every transition, so any
// disagreement means the session mis-attributed or dropped a shrink charge.
func TestOnlineSettleWritebackAccounting(t *testing.T) {
	for _, name := range []string{"blit", "crc", "fir"} {
		prof, _ := workload.ByName(name)
		c := cache.MustConfigurable(cache.MinConfig())
		mirror := cache.MustConfigurable(cache.MinConfig())
		sync := func() {
			if want := c.Config(); mirror.Config() != want {
				mirror.AllowShrink = true
				if err := mirror.SetConfig(want); err != nil {
					t.Fatalf("%s: mirror rejected %v: %v", name, want, err)
				}
				mirror.AllowShrink = false
			}
		}
		o := NewOnline(c, energy.DefaultParams(), 4000)
		sync() // the session may reconfigure at construction
		src := trace.OnlyData(prof.NewSource())
		for i := 0; i < 500_000 && !o.Done(); i++ {
			a, _ := src.Next()
			o.Access(a.Addr, a.IsWrite())
			mirror.Access(a.Addr, a.IsWrite())
			sync()
		}
		if !o.Done() {
			t.Fatalf("%s: session did not settle", name)
		}
		if got, want := o.SettleWritebacks(), mirror.Stats().SettleWritebacks; got != want {
			t.Errorf("%s: session reports %d settle writebacks, mirror cache charged %d", name, got, want)
		}
	}
}

// TestOnlineAbortSettleWritebacksStopAccumulating pins the abort path: after
// Abort the cache is a plain cache, so no further shrink can happen and the
// settle-writeback counter must freeze at its abort-time value.
func TestOnlineAbortSettleWritebacksStopAccumulating(t *testing.T) {
	prof, _ := workload.ByName("blit")
	c := cache.MustConfigurable(cache.MinConfig())
	o := NewOnline(c, energy.DefaultParams(), 4000)
	src := trace.OnlyData(prof.NewSource())
	for i := 0; i < 9000; i++ {
		a, _ := src.Next()
		o.Access(a.Addr, a.IsWrite())
	}
	if o.Done() {
		t.Skip("session finished before the abort point")
	}
	o.Abort()
	frozen := o.SettleWritebacks()
	for i := 0; i < 50_000; i++ {
		a, _ := src.Next()
		o.Access(a.Addr, a.IsWrite())
	}
	if got := o.SettleWritebacks(); got != frozen {
		t.Errorf("settle writebacks moved from %d to %d after abort", frozen, got)
	}
}

// TestOnlineDegradesMidSession wedges the counter readout only after two
// good windows, so the session degrades from deep inside the sweep rather
// than from its first reading: the Degraded flag must still propagate
// through Result and the cache must settle on SafeConfig.
func TestOnlineDegradesMidSession(t *testing.T) {
	prof, _ := workload.ByName("crc")
	c := cache.MustConfigurable(cache.MinConfig())
	windows := 0
	wedgeLater := func(cfg cache.Config, st cache.Stats) cache.Stats {
		windows++
		if windows <= 2 {
			return st
		}
		return cache.Stats{}
	}
	o := NewOnlineMetered(c, energy.DefaultParams(), 4000, wedgeLater)
	if o.Degraded() {
		t.Fatal("Degraded reported before the session finished")
	}
	src := trace.OnlyData(prof.NewSource())
	for i := 0; i < 500_000 && !o.Done(); i++ {
		a, _ := src.Next()
		o.Access(a.Addr, a.IsWrite())
	}
	if !o.Done() {
		t.Fatal("session did not settle after the counter wedged")
	}
	if !o.Degraded() || !o.Result().Degraded {
		t.Errorf("Degraded()=%v Result().Degraded=%v after a mid-session wedge, want both true",
			o.Degraded(), o.Result().Degraded)
	}
	if windows < 3 {
		t.Errorf("meter saw %d windows; the wedge was never reached", windows)
	}
	if o.Cache().Config() != SafeConfig() {
		t.Errorf("degraded session left the cache on %v, want SafeConfig %v", o.Cache().Config(), SafeConfig())
	}
}

// TestOnlineDoubleClose pins Close's io.Closer discipline: any number of
// calls, before or after the search settles, return nil and leave the
// session in a consistent state.
func TestOnlineDoubleClose(t *testing.T) {
	// Mid-session: the first Close aborts, the rest are no-ops.
	prof, _ := workload.ByName("fir")
	c := cache.MustConfigurable(cache.MinConfig())
	o := NewOnline(c, energy.DefaultParams(), 5000)
	src := trace.OnlyData(prof.NewSource())
	for i := 0; i < 7000 && !o.Done(); i++ {
		a, _ := src.Next()
		o.Access(a.Addr, a.IsWrite())
	}
	for i := 0; i < 3; i++ {
		if err := o.Close(); err != nil {
			t.Fatalf("Close #%d = %v", i+1, err)
		}
	}
	if !o.Done() && !o.Aborted() {
		t.Error("mid-session Close neither settled nor aborted the session")
	}

	// Post-settle: Close must not retroactively mark the session aborted.
	done, _ := runOnline(t, "crc", 4000, 500_000)
	if !done.Done() {
		t.Fatal("session did not settle")
	}
	for i := 0; i < 3; i++ {
		if err := done.Close(); err != nil {
			t.Fatalf("post-settle Close #%d = %v", i+1, err)
		}
	}
	if done.Aborted() {
		t.Error("Close after settling marked the session aborted")
	}
	if !done.Done() {
		t.Error("Close after settling un-finished the session")
	}
}
