package tuner

import (
	"testing"

	"selftune/internal/cache"
	"selftune/internal/energy"
)

func TestConstrainRestrictsSpace(t *testing.T) {
	sp := DefaultSpace().Constrain(4096)
	if got := sp.Sizes; len(got) != 2 || got[0] != 2048 || got[1] != 4096 {
		t.Fatalf("sizes = %v, want [2048 4096]", got)
	}
	if sp.Valid(cache.Config{SizeBytes: 8192, Ways: 2, LineBytes: 32}) {
		t.Fatal("over-budget configuration accepted")
	}
	if !sp.Valid(cache.Config{SizeBytes: 4096, Ways: 2, LineBytes: 32}) {
		t.Fatal("in-budget configuration rejected")
	}
	// Unconstrained passthrough.
	if got := DefaultSpace().Constrain(0).Sizes; len(got) != 3 {
		t.Fatalf("maxBytes=0 should leave the space unchanged, sizes = %v", got)
	}
	// A budget under the smallest size still keeps the smallest size: a
	// cache must exist somewhere, and admission control owns the floor.
	tiny := DefaultSpace().Constrain(1024)
	if len(tiny.Sizes) != 1 || tiny.Sizes[0] != 2048 {
		t.Fatalf("tiny budget sizes = %v, want [2048]", tiny.Sizes)
	}
	if !tiny.Valid(cache.MinConfig()) {
		t.Fatal("smallest configuration must survive any budget")
	}
}

func TestMinFootprintBytes(t *testing.T) {
	if got := DefaultSpace().MinFootprintBytes(); got != 2048 {
		t.Fatalf("MinFootprintBytes = %d, want 2048", got)
	}
	if got := (Space{}).MinFootprintBytes(); got != 0 {
		t.Fatalf("empty space MinFootprintBytes = %d, want 0", got)
	}
}

func TestClampToBudget(t *testing.T) {
	sp := DefaultSpace()
	cases := []struct {
		in       cache.Config
		maxBytes int
		want     cache.Config
	}{
		// Already fits: unchanged.
		{cache.Config{SizeBytes: 4096, Ways: 2, LineBytes: 32}, 4096,
			cache.Config{SizeBytes: 4096, Ways: 2, LineBytes: 32}},
		// 8K/4W/pred shrunk to 4K: 4 ways are unrealisable at 4K, so
		// prediction drops and ways reduce to 2.
		{cache.Config{SizeBytes: 8192, Ways: 4, LineBytes: 32, WayPredict: true}, 4096,
			cache.Config{SizeBytes: 4096, Ways: 2, LineBytes: 32}},
		// Shrunk all the way to the direct-mapped minimum size.
		{cache.Config{SizeBytes: 8192, Ways: 4, LineBytes: 64, WayPredict: true}, 2048,
			cache.Config{SizeBytes: 2048, Ways: 1, LineBytes: 64}},
		// Budget below every size: smallest size wins.
		{cache.Config{SizeBytes: 8192, Ways: 2, LineBytes: 16}, 1024,
			cache.Config{SizeBytes: 2048, Ways: 1, LineBytes: 16}},
		// Unconstrained passthrough.
		{cache.Config{SizeBytes: 8192, Ways: 4, LineBytes: 64}, 0,
			cache.Config{SizeBytes: 8192, Ways: 4, LineBytes: 64}},
	}
	for _, c := range cases {
		got := ClampToBudget(c.in, c.maxBytes, sp)
		if got != c.want {
			t.Errorf("ClampToBudget(%v, %d) = %v, want %v", c.in, c.maxBytes, got, c.want)
		}
		if c.maxBytes > 0 && got.SizeBytes > c.maxBytes && got.SizeBytes != 2048 {
			t.Errorf("ClampToBudget(%v, %d) = %v exceeds the budget", c.in, c.maxBytes, got)
		}
		if err := got.Validate(); err != nil {
			t.Errorf("ClampToBudget(%v, %d) = %v is unrealisable: %v", c.in, c.maxBytes, got, err)
		}
	}
}

func TestExcludedByBudget(t *testing.T) {
	sp := DefaultSpace()
	// 27 valid configurations total; a 4096 B budget removes the 8K tier.
	all := 0
	for _, c := range cache.AllConfigs() {
		if c.SizeBytes > 4096 {
			all++
		}
	}
	if got := ExcludedByBudget(sp, 4096); got != all {
		t.Fatalf("ExcludedByBudget(4096) = %d, want %d (the 8K tier)", got, all)
	}
	if got := ExcludedByBudget(sp, 0); got != 0 {
		t.Fatalf("ExcludedByBudget(0) = %d, want 0", got)
	}
	if got := ExcludedByBudget(sp, 1<<20); got != 0 {
		t.Fatalf("ExcludedByBudget(1M) = %d, want 0", got)
	}
}

// strided exercises a session with a simple deterministic access pattern.
func strided(o *Online, n int) {
	for i := 0; i < n && !o.Done(); i++ {
		o.Access(uint32(i*64%32768), i%7 == 0)
	}
}

func TestConstrainedOnlineSettlesWithinBudget(t *testing.T) {
	for _, budget := range []int{2048, 4096} {
		c := cache.MustConfigurable(cache.MinConfig())
		o := NewOnlineConstrained(c, energy.DefaultParams(), 500, nil, nil, 0, budget, cache.Config{})
		strided(o, 200_000)
		if !o.Done() {
			t.Fatalf("budget %d: search did not settle", budget)
		}
		res := o.Result()
		if res.Best.Cfg.SizeBytes > budget {
			t.Fatalf("budget %d: settled on %v", budget, res.Best.Cfg)
		}
		for _, r := range res.Examined {
			if r.Cfg.SizeBytes > budget {
				t.Fatalf("budget %d: examined over-budget %v", budget, r.Cfg)
			}
		}
		if o.MaxBytes() != budget {
			t.Fatalf("MaxBytes = %d, want %d", o.MaxBytes(), budget)
		}
	}
}

// TestConstrainedSnapshotResume pins that a budget-constrained session
// snapshotted mid-search resumes into the identical restricted walk: the
// resumed session's settle matches an uninterrupted constrained run.
func TestConstrainedSnapshotResume(t *testing.T) {
	const budget = 4096
	run := func(interrupt bool) SearchResult {
		c := cache.MustConfigurable(cache.MinConfig())
		o := NewOnlineConstrained(c, energy.DefaultParams(), 500, nil, nil, 0, budget, cache.Config{})
		i := 0
		for !o.Done() {
			o.Access(uint32(i*64%32768), i%7 == 0)
			i++
			if interrupt && o.CompletedWindows() == 2 && o.AtWindowBoundary() {
				st, err := o.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				if st.MaxBytes != budget {
					t.Fatalf("snapshot MaxBytes = %d, want %d", st.MaxBytes, budget)
				}
				img, err := c.Image()
				if err != nil {
					t.Fatal(err)
				}
				o.Abort()
				c2, err := cache.RestoreConfigurable(img)
				if err != nil {
					t.Fatal(err)
				}
				o2, err := ResumeOnline(c2, energy.DefaultParams(), st, nil)
				if err != nil {
					t.Fatal(err)
				}
				o = o2
				interrupt = false
			}
		}
		return o.Result()
	}
	base := run(false)
	resumed := run(true)
	if base.Best.Cfg != resumed.Best.Cfg || base.Best.Energy != resumed.Best.Energy {
		t.Fatalf("resumed constrained search settled on %v (%g), uninterrupted on %v (%g)",
			resumed.Best.Cfg, resumed.Best.Energy, base.Best.Cfg, base.Best.Energy)
	}
	if len(base.Examined) != len(resumed.Examined) {
		t.Fatalf("examined %d vs %d configurations", len(resumed.Examined), len(base.Examined))
	}
}

// TestWarmStartSearch pins the warm re-search entry point: a search started
// from a mid-space configuration only explores upward from it, within the
// budget.
func TestWarmStartSearch(t *testing.T) {
	start := cache.Config{SizeBytes: 4096, Ways: 2, LineBytes: 32}
	c := cache.MustConfigurable(cache.MinConfig())
	o := NewOnlineConstrained(c, energy.DefaultParams(), 500, nil, nil, 0, 4096, start)
	strided(o, 200_000)
	if !o.Done() {
		t.Fatal("warm search did not settle")
	}
	for _, r := range o.Result().Examined {
		if r.Cfg.SizeBytes > 4096 {
			t.Fatalf("warm constrained search examined %v", r.Cfg)
		}
		if r.Cfg.SizeBytes < start.SizeBytes {
			t.Fatalf("warm search walked below its start: %v", r.Cfg)
		}
	}
}
