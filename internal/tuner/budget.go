package tuner

import "selftune/internal/cache"

// This file is the budget-constrained face of the Figure 6 search: a fleet's
// capacity allocator (internal/fleet/allocator) hands each session a maximum
// footprint in bytes, and the session's search must never settle on — or even
// probe — a configuration larger than that. The constraint is expressed as a
// restriction of the Space the heuristic walks, so the search logic itself is
// untouched: candidate sizes above the budget simply do not exist. A
// constrained search is still a pure function of its measurement sequence,
// so snapshot/resume (session.go) carries the budget and start alongside the
// transcript and replays the identical restricted walk.

// Constrain restricts the space to configurations of at most maxBytes total
// capacity. The smallest size always survives — a cache must exist at some
// size, and admission control (internal/fleet) is responsible for never
// assigning a budget below the minimum footprint — so a budget under the
// smallest size behaves as a budget of exactly that size. maxBytes <= 0
// means unconstrained and returns the space unchanged. The start
// configuration is clamped into the restricted space.
func (s Space) Constrain(maxBytes int) Space {
	if maxBytes <= 0 {
		return s
	}
	out := s
	out.Sizes = nil
	for i, size := range s.Sizes {
		if i == 0 || size <= maxBytes {
			out.Sizes = append(out.Sizes, size)
		}
	}
	minSize := out.Sizes[0]
	inner := s.Valid
	out.Valid = func(c cache.Config) bool {
		if c.SizeBytes > maxBytes && c.SizeBytes != minSize {
			return false
		}
		return inner(c)
	}
	out.Start = ClampToBudget(s.Start, maxBytes, s)
	return out
}

// MinFootprintBytes is the smallest capacity any session can occupy — the
// space's smallest candidate size. Admission control rejects budgets that
// cannot give every session at least this much.
func (s Space) MinFootprintBytes() int {
	if len(s.Sizes) == 0 {
		return 0
	}
	return s.Sizes[0]
}

// ClampToBudget maps a configuration into the budget: the largest candidate
// size not above maxBytes (the smallest size when none fits), with
// associativity reduced to the largest value realisable at that size and way
// prediction dropped if the result is direct-mapped. It is how a constrained
// re-search warm-starts "from the current configuration" when the current
// configuration no longer fits the assignment. maxBytes <= 0 returns cfg
// unchanged.
func ClampToBudget(cfg cache.Config, maxBytes int, space Space) cache.Config {
	if maxBytes <= 0 || cfg.SizeBytes <= maxBytes {
		return cfg
	}
	size := space.Sizes[0]
	for _, s := range space.Sizes {
		if s <= maxBytes && s > size {
			size = s
		}
	}
	out := cfg
	out.SizeBytes = size
	for !space.Valid(out) {
		// Reduce associativity toward direct-mapped; the smallest size is
		// always realisable at 1 way with prediction off.
		switch {
		case out.WayPredict:
			out.WayPredict = false
		case out.Ways > 1:
			ways := 1
			for _, w := range space.Assocs {
				if w < out.Ways && w > ways {
					ways = w
				}
			}
			out.Ways = ways
		default:
			// Line size is never the blocker in the paper's space, but be
			// safe against exotic geometries.
			if out.LineBytes != space.Lines[0] {
				out.LineBytes = space.Lines[0]
			} else {
				return space.Start
			}
		}
	}
	return out
}

// ExcludedByBudget counts the configurations of the space that a budget of
// maxBytes removes — the "configs excluded" number the explainer reports
// alongside a constrained search. 0 when unconstrained.
func ExcludedByBudget(space Space, maxBytes int) int {
	if maxBytes <= 0 {
		return 0
	}
	minSize := space.Sizes[0]
	n := 0
	for _, size := range space.Sizes {
		if size <= maxBytes || size == minSize {
			continue
		}
		for _, ways := range space.Assocs {
			for _, line := range space.Lines {
				c := cache.Config{SizeBytes: size, Ways: ways, LineBytes: line}
				if space.Valid(c) {
					n++
				}
				c.WayPredict = true
				if space.Valid(c) {
					n++
				}
			}
		}
	}
	return n
}
