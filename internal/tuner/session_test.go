package tuner

import (
	"testing"

	"selftune/internal/cache"
	"selftune/internal/energy"
	"selftune/internal/trace"
)

// runToSettle feeds accs until the session settles, returning how many
// accesses it consumed.
func runToSettle(t *testing.T, o *Online, accs []trace.Access) int {
	t.Helper()
	for i, a := range accs {
		if o.Done() {
			return i
		}
		o.Access(a.Addr, a.IsWrite())
	}
	if !o.Done() {
		t.Fatal("session did not settle within the stream")
	}
	return len(accs)
}

// snapshotAt feeds accs until the session has completed k windows, then
// snapshots session and cache at that boundary. Returns the snapshot, the
// cache image, and the number of accesses consumed.
func snapshotAt(t *testing.T, o *Online, accs []trace.Access, k uint64) (SessionState, cache.Image, int) {
	t.Helper()
	for i, a := range accs {
		o.Access(a.Addr, a.IsWrite())
		if o.CompletedWindows() >= k {
			if !o.AtWindowBoundary() {
				t.Fatalf("completed window %d but not at a boundary", k)
			}
			st, err := o.Snapshot()
			if err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
			img, err := o.Cache().Image()
			if err != nil {
				t.Fatalf("Image: %v", err)
			}
			return st, img, i + 1
		}
	}
	t.Fatalf("stream ended before window %d completed", k)
	panic("unreachable")
}

// sameResult compares two settled searches bit for bit.
func sameResult(t *testing.T, label string, a, b SearchResult) {
	t.Helper()
	if a.Best.Cfg != b.Best.Cfg {
		t.Errorf("%s: settled on %v, want %v", label, b.Best.Cfg, a.Best.Cfg)
	}
	if a.Best.Energy != b.Best.Energy {
		t.Errorf("%s: settled energy %v, want bit-identical %v", label, b.Best.Energy, a.Best.Energy)
	}
	if a.NumExamined() != b.NumExamined() {
		t.Errorf("%s: examined %d, want %d", label, b.NumExamined(), a.NumExamined())
	}
	if a.Degraded != b.Degraded {
		t.Errorf("%s: degraded %v, want %v", label, b.Degraded, a.Degraded)
	}
	for i := 0; i < a.NumExamined() && i < b.NumExamined(); i++ {
		if a.Examined[i].Cfg != b.Examined[i].Cfg || a.Examined[i].Energy != b.Examined[i].Energy {
			t.Errorf("%s: examined[%d] = (%v, %v), want (%v, %v)", label, i,
				b.Examined[i].Cfg, b.Examined[i].Energy, a.Examined[i].Cfg, a.Examined[i].Energy)
		}
	}
}

// TestSessionResumeEquivalence is the heart of crash safety: a session
// snapshotted at any window boundary and resumed on a cache restored from
// the matching image settles on the bit-identical configuration, energy and
// examined sequence as the uninterrupted session.
func TestSessionResumeEquivalence(t *testing.T) {
	const window = 4000
	p := energy.DefaultParams()
	accs := dataStream(t, "crc", 900_000)

	// Uninterrupted baseline.
	base := NewOnline(cache.MustConfigurable(cache.MinConfig()), p, window)
	runToSettle(t, base, accs)
	baseWB := base.SettleWritebacks()

	// Kill after the first window, mid-search, and just before settling.
	n := base.CompletedWindows()
	if n < 3 {
		t.Fatalf("baseline search examined only %d windows; too short to interrupt", n)
	}
	for _, k := range []uint64{1, n / 2, n - 1} {
		o := NewOnline(cache.MustConfigurable(cache.MinConfig()), p, window)
		st, img, pos := snapshotAt(t, o, accs, k)
		o.Abort() // the "killed" process

		restored, err := cache.RestoreConfigurable(img)
		if err != nil {
			t.Fatalf("k=%d: restore cache: %v", k, err)
		}
		r, err := ResumeOnline(restored, p, st, nil)
		if err != nil {
			t.Fatalf("k=%d: ResumeOnline: %v", k, err)
		}
		if r.CompletedWindows() != k {
			t.Fatalf("k=%d: resumed session reports %d completed windows", k, r.CompletedWindows())
		}
		runToSettle(t, r, accs[pos:])
		sameResult(t, "resumed", base.Result(), r.Result())
		if r.Cache().Config() != base.Result().Best.Cfg {
			t.Errorf("k=%d: resumed cache settled on %v, want %v", k, r.Cache().Config(), base.Result().Best.Cfg)
		}
		if r.SettleWritebacks() != baseWB {
			t.Errorf("k=%d: settle writebacks %d, want %d", k, r.SettleWritebacks(), baseWB)
		}
	}
}

// TestSessionResumeFresh covers the degenerate boundary before any access:
// an empty transcript resumes into a brand-new search.
func TestSessionResumeFresh(t *testing.T) {
	p := energy.DefaultParams()
	accs := dataStream(t, "bcnt", 900_000)

	base := NewOnline(cache.MustConfigurable(cache.MinConfig()), p, 4000)
	runToSettle(t, base, accs)

	o := NewOnline(cache.MustConfigurable(cache.MinConfig()), p, 4000)
	st, err := o.Snapshot() // before any access
	if err != nil {
		t.Fatalf("Snapshot before first access: %v", err)
	}
	img, err := o.Cache().Image()
	if err != nil {
		t.Fatal(err)
	}
	o.Abort()
	restored, err := cache.RestoreConfigurable(img)
	if err != nil {
		t.Fatal(err)
	}
	r, err := ResumeOnline(restored, p, st, nil)
	if err != nil {
		t.Fatalf("ResumeOnline: %v", err)
	}
	runToSettle(t, r, accs)
	sameResult(t, "fresh-resume", base.Result(), r.Result())
}

// TestSessionResumeFinished: a settled session round-trips, its result
// recomputed from the transcript rather than stored.
func TestSessionResumeFinished(t *testing.T) {
	p := energy.DefaultParams()
	accs := dataStream(t, "fir", 900_000)
	o := NewOnline(cache.MustConfigurable(cache.MinConfig()), p, 4000)
	runToSettle(t, o, accs)

	st, err := o.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot after settle: %v", err)
	}
	if !st.Finished {
		t.Fatal("snapshot of a settled session not marked finished")
	}
	img, err := o.Cache().Image()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := cache.RestoreConfigurable(img)
	if err != nil {
		t.Fatal(err)
	}
	r, err := ResumeOnline(restored, p, st, nil)
	if err != nil {
		t.Fatalf("ResumeOnline: %v", err)
	}
	if !r.Done() {
		t.Fatal("resumed settled session not Done")
	}
	sameResult(t, "finished-resume", o.Result(), r.Result())
	// And it keeps serving accesses as a plain cache.
	for _, a := range accs[:10_000] {
		r.Access(a.Addr, a.IsWrite())
	}
	if r.Cache().Config() != o.Result().Best.Cfg {
		t.Error("resumed settled cache drifted off the chosen configuration")
	}
}

func TestSnapshotRefusesMidWindow(t *testing.T) {
	p := energy.DefaultParams()
	accs := dataStream(t, "crc", 50_000)
	o := NewOnline(cache.MustConfigurable(cache.MinConfig()), p, 4000)
	for _, a := range accs[:100] { // mid-warmup / mid-window
		o.Access(a.Addr, a.IsWrite())
	}
	if o.AtWindowBoundary() {
		t.Fatal("mid-window state reports a boundary")
	}
	if _, err := o.Snapshot(); err == nil {
		t.Fatal("Snapshot mid-window must refuse")
	}
	o.Abort()
	// After abort the state is static again and snapshottable.
	st, err := o.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot after abort: %v", err)
	}
	if !st.Aborted {
		t.Fatal("snapshot of an aborted session not marked aborted")
	}
}

// TestResumeRejectsCorruptState pins that a tampered snapshot fails
// construction loudly instead of resuming a diverged search.
func TestResumeRejectsCorruptState(t *testing.T) {
	p := energy.DefaultParams()
	accs := dataStream(t, "crc", 900_000)
	o := NewOnline(cache.MustConfigurable(cache.MinConfig()), p, 4000)
	st, img, _ := snapshotAt(t, o, accs, 3)
	o.Abort()

	restore := func() *cache.Configurable {
		c, err := cache.RestoreConfigurable(img)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	// Transcript diverged: first recorded window claims a configuration
	// the deterministic search would never request first.
	bad := st
	bad.History = append([]EvalResult(nil), st.History...)
	bad.History[0].Cfg = cache.Config{SizeBytes: 8192, Ways: 4, LineBytes: 64}
	if _, err := ResumeOnline(restore(), p, bad, nil); err == nil {
		t.Error("resume accepted a diverged transcript")
	}

	// Cache/snapshot mismatch.
	other := cache.MustConfigurable(cache.BaseConfig())
	if _, err := ResumeOnline(other, p, st, nil); err == nil {
		t.Error("resume accepted a cache at the wrong configuration")
	}

	// Zero window.
	zw := st
	zw.Window = 0
	if _, err := ResumeOnline(restore(), p, zw, nil); err == nil {
		t.Error("resume accepted a zero window")
	}

	// Finished flag on a transcript that does not settle.
	fin := st
	fin.Finished = true
	if _, err := ResumeOnline(restore(), p, fin, nil); err == nil {
		t.Error("resume accepted finished=true with a mid-search transcript")
	}
}
