package tuner

import (
	"testing"

	"selftune/internal/cache"
	"selftune/internal/energy"
	"selftune/internal/trace"
	"selftune/internal/workload"
)

func dataStream(t *testing.T, name string, n int) []trace.Access {
	t.Helper()
	prof, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("no profile %q", name)
	}
	_, data := trace.Split(trace.NewSliceSource(prof.Generate(n)))
	return data
}

func TestEnergyObjectiveMatchesSearchPaper(t *testing.T) {
	p := energy.DefaultParams()
	ev := NewTraceEvaluator(dataStream(t, "g3fax", 100_000), p)
	a := SearchPaper(ev)
	b := SearchObjective(ev, PaperOrder, DefaultSpace(), EnergyObjective)
	if a.Best.Cfg != b.Best.Cfg || a.NumExamined() != b.NumExamined() {
		t.Errorf("energy objective diverges: %v/%d vs %v/%d",
			b.Best.Cfg, b.NumExamined(), a.Best.Cfg, a.NumExamined())
	}
}

func TestObjectiveResultsCarryTrueEnergy(t *testing.T) {
	p := energy.DefaultParams()
	ev := NewTraceEvaluator(dataStream(t, "adpcm", 80_000), p)
	res := SearchObjective(ev, PaperOrder, DefaultSpace(), EDPObjective)
	// The recorded energies must be genuine joules, not EDP values.
	want := ev.Evaluate(res.Best.Cfg).Energy
	if res.Best.Energy != want {
		t.Errorf("best energy %g, want the true energy %g", res.Best.Energy, want)
	}
	for _, r := range res.Examined {
		if r.Energy != ev.Evaluate(r.Cfg).Energy {
			t.Errorf("examined %v carries objective value, not energy", r.Cfg)
		}
	}
}

func TestEDPFavoursFasterConfigurations(t *testing.T) {
	// On a miss-heavy stream the EDP optimum must not be slower than the
	// energy optimum: trading stall cycles for array energy is exactly
	// what the energy objective does and EDP penalises.
	p := energy.DefaultParams()
	for _, name := range []string{"blit", "mpeg2", "epic"} {
		ev := NewTraceEvaluator(dataStream(t, name, 120_000), p)
		eOpt := ExhaustiveObjective(ev, cache.AllConfigs(), EnergyObjective).Best
		dOpt := ExhaustiveObjective(ev, cache.AllConfigs(), EDPObjective).Best
		if dOpt.Breakdown.Cycles > eOpt.Breakdown.Cycles {
			t.Errorf("%s: EDP optimum %v is slower (%d cycles) than energy optimum %v (%d)",
				name, dOpt.Cfg, dOpt.Breakdown.Cycles, eOpt.Cfg, eOpt.Breakdown.Cycles)
		}
		if dOpt.Energy < eOpt.Energy {
			t.Errorf("%s: EDP optimum has lower energy than the energy optimum", name)
		}
	}
}

func TestDelayCapObjective(t *testing.T) {
	p := energy.DefaultParams()
	ev := NewTraceEvaluator(dataStream(t, "mpeg2", 120_000), p)
	// Baseline: the base cache's cycle count.
	baseline := ev.Evaluate(cache.BaseConfig()).Breakdown.Cycles

	// A generous cap behaves like plain energy minimisation.
	loose := ExhaustiveObjective(ev, cache.AllConfigs(), DelayCapObjective(baseline, 10)).Best
	pure := ExhaustiveObjective(ev, cache.AllConfigs(), EnergyObjective).Best
	if loose.Cfg != pure.Cfg {
		t.Errorf("loose cap chose %v, pure energy chose %v", loose.Cfg, pure.Cfg)
	}

	// A tight cap must be respected whenever any configuration meets it.
	tight := ExhaustiveObjective(ev, cache.AllConfigs(), DelayCapObjective(baseline, 1.02)).Best
	if float64(tight.Breakdown.Cycles) > 1.02*float64(baseline) {
		// Only acceptable if nothing at all meets the cap.
		met := false
		for _, cfg := range cache.AllConfigs() {
			if float64(ev.Evaluate(cfg).Breakdown.Cycles) <= 1.02*float64(baseline) {
				met = true
				break
			}
		}
		if met {
			t.Errorf("tight cap violated: %v at %d cycles (cap %.0f)",
				tight.Cfg, tight.Breakdown.Cycles, 1.02*float64(baseline))
		}
	}
	if tight.Energy < pure.Energy {
		t.Errorf("constrained optimum cheaper than unconstrained")
	}
}
