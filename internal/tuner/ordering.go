package tuner

// AllOrders enumerates the 24 permutations of the four tunable parameters.
// The paper compares its impact-derived ordering (size, line, assoc, pred)
// against one strawman; the tournament over all orderings (see the ordering
// ablation test and bench) shows why the impact analysis of §3.2 matters:
// orderings that defer the size decision systematically miss the optimum.
func AllOrders() [][]Param {
	base := []Param{ParamSize, ParamLine, ParamAssoc, ParamPred}
	var out [][]Param
	var permute func(cur []Param, rest []Param)
	permute = func(cur []Param, rest []Param) {
		if len(rest) == 0 {
			out = append(out, append([]Param(nil), cur...))
			return
		}
		for i := range rest {
			next := make([]Param, 0, len(rest)-1)
			next = append(next, rest[:i]...)
			next = append(next, rest[i+1:]...)
			permute(append(cur, rest[i]), next)
		}
	}
	permute(nil, base)
	return out
}

// OrderName renders an ordering compactly, e.g. "size>line>assoc>pred".
func OrderName(order []Param) string {
	s := ""
	for i, p := range order {
		if i > 0 {
			s += ">"
		}
		s += p.String()
	}
	return s
}
