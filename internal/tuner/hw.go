package tuner

import (
	"fmt"

	"selftune/internal/cacti"
	"selftune/internal/energy"
)

// HardwareModel estimates the tuner's silicon cost from its datapath
// inventory, reproducing the paper's §4 synthesis results: about 4,000
// gates, 0.039 mm² in 0.18 µm, 2.69 mW at 200 MHz, 64 cycles per
// configuration evaluated, and a few nanojoules per whole search.
type HardwareModel struct {
	// GatesPerRegisterBit etc. are equivalent-gate costs of the
	// datapath elements (2-input NAND equivalents).
	GatesPerRegisterBit int
	// SequentialMultiplierGates is the 16x16 shift-add multiplier.
	SequentialMultiplierGates int
	// AdderGates is the 32-bit accumulator adder.
	AdderGates int
	// ComparatorGates is the 32-bit magnitude comparator.
	ComparatorGates int
	// FSMGates covers the three state machines and control.
	FSMGates int
	// MuxGates covers the register-file read muxes (Figure 7).
	MuxGates int
	// PowerWatts is the synthesised power at ClockHz (the paper reports
	// 2.69 mW at 200 MHz from Synopsys Design Compiler).
	PowerWatts float64
	// ClockHz is the tuner clock.
	ClockHz float64
}

// NewHardwareModel returns the calibrated 0.18 µm model.
func NewHardwareModel() *HardwareModel {
	return &HardwareModel{
		GatesPerRegisterBit:       8,
		SequentialMultiplierGates: 700,
		AdderGates:                230,
		ComparatorGates:           160,
		FSMGates:                  250,
		MuxGates:                  220,
		PowerWatts:                2.69e-3,
		ClockHz:                   200e6,
	}
}

// RegisterBits is the datapath register inventory (Figure 7): fifteen
// 16-bit energy registers, three 32-bit collection registers, the 32-bit
// energy and lowest-energy registers, and the 7-bit configure register.
func (h *HardwareModel) RegisterBits() int {
	return 15*16 + 3*32 + 2*32 + 7
}

// Gates returns the equivalent gate count.
func (h *HardwareModel) Gates() int {
	return h.RegisterBits()*h.GatesPerRegisterBit +
		h.SequentialMultiplierGates + h.AdderGates + h.ComparatorGates +
		h.FSMGates + h.MuxGates
}

// AreaMM2 returns the silicon area in the given technology.
func (h *HardwareModel) AreaMM2(t cacti.Tech) float64 {
	return t.GateArea(h.Gates())
}

// AreaOverheadVsMIPS returns the area relative to a MIPS 4Kp-class core
// with caches (~1.2 mm² in 0.18 µm, per the MIPS datasheet the paper
// cites); the paper reports just over 3%.
func (h *HardwareModel) AreaOverheadVsMIPS(t cacti.Tech) float64 {
	const mips4kpMM2 = 1.2
	return h.AreaMM2(t) / mips4kpMM2
}

// PowerOverheadVsMIPS returns tuner power relative to a ~0.5 W MIPS-class
// core; the paper reports about 0.5%.
func (h *HardwareModel) PowerOverheadVsMIPS() float64 {
	const mipsWatts = 0.5
	return h.PowerWatts / mipsWatts
}

// SearchEnergy applies Equation 2 for a search that evaluated numSearch
// configurations at cyclesPerConfig each.
func (h *HardwareModel) SearchEnergy(p *energy.Params, cyclesPerConfig, numSearch int) float64 {
	return p.TunerEnergy(h.PowerWatts, cyclesPerConfig, numSearch)
}

// String summarises the cost estimate.
func (h *HardwareModel) String() string {
	return fmt.Sprintf("tuner hw: %d gates, %.2f mW @ %.0f MHz",
		h.Gates(), h.PowerWatts*1e3, h.ClockHz/1e6)
}
