package tuner

import (
	"fmt"
	"math"

	"selftune/internal/cache"
)

// This file is the tuner's defence against bad measurements. An in-situ
// tuner reads hardware counters that can saturate, wedge, or glitch; a
// search that trusts every reading blindly will happily settle on a
// configuration chosen by garbage. The policy, applied identically to the
// offline search and the online tuner:
//
//  1. Every reading passes Plausible before it may steer the search.
//  2. An implausible reading is re-measured once (a fresh replay offline,
//     the next measurement window online) — transient faults clear here.
//  3. If the re-measure is also implausible, tuning is abandoned and the
//     cache falls back to SafeConfig, the paper's 8 KB 4-way base: the one
//     configuration that is never badly wrong on any benchmark. The search
//     reports Degraded with the offending fault; an online session keeps
//     serving accesses throughout.

// SafeConfig is the graceful-degradation fallback: the paper's fixed 8 KB
// four-way base cache, the configuration the whole of Table 1 measures
// savings against precisely because it is the safe default.
func SafeConfig() cache.Config { return cache.BaseConfig() }

// Plausible reports whether a measurement could have come from a correctly
// counting cache: a failed replay, a non-finite or negative energy, an
// empty window, or arithmetically impossible counters (hits+misses !=
// accesses, more writes than accesses) all disqualify a reading from
// steering the search.
func Plausible(r EvalResult) error {
	if r.Err != nil {
		return fmt.Errorf("tuner: replay failed: %w", r.Err)
	}
	if math.IsNaN(r.Energy) || math.IsInf(r.Energy, 0) || r.Energy < 0 {
		return fmt.Errorf("tuner: non-finite or negative energy %v for %v", r.Energy, r.Cfg)
	}
	st := r.Stats
	if st == (cache.Stats{}) {
		// A reading with no counters at all is either a synthetic
		// evaluator (tests, the FSMD model) that prices configurations
		// directly — fine — or a wedged counter latch that never captured
		// the window. The two are distinguishable: a real window always
		// accrues static energy, so all-zero counters with zero energy can
		// only be a stuck readout.
		if r.Energy == 0 {
			return fmt.Errorf("tuner: all-zero reading for %v (stuck counters?)", r.Cfg)
		}
		return nil
	}
	if st.Accesses == 0 {
		return fmt.Errorf("tuner: zero-access reading for %v", r.Cfg)
	}
	if st.Hits+st.Misses != st.Accesses {
		return fmt.Errorf("tuner: impossible counters for %v: hits %d + misses %d != accesses %d",
			r.Cfg, st.Hits, st.Misses, st.Accesses)
	}
	if st.Writes > st.Accesses {
		return fmt.Errorf("tuner: impossible counters for %v: writes %d > accesses %d",
			r.Cfg, st.Writes, st.Accesses)
	}
	return nil
}

// Remeasurer is implemented by evaluators that can produce a genuinely
// fresh second reading of a configuration (bypassing any memoisation). The
// search uses it for the re-measure step; evaluators without it are simply
// evaluated again, which for the online tuner naturally measures the next
// window.
type Remeasurer interface {
	Remeasure(cfg cache.Config) EvalResult
}

// remeasure obtains a second, fresh reading of cfg from eval.
func remeasure(eval Evaluator, cfg cache.Config) EvalResult {
	if rm, ok := eval.(Remeasurer); ok {
		return rm.Remeasure(cfg)
	}
	return eval.Evaluate(cfg)
}

// searchFault unwinds a search whose readings stayed implausible after the
// re-measure; SearchInSpace recovers it into a Degraded result.
type searchFault struct{ err error }
