package tuner

import (
	"log/slog"

	"selftune/internal/cache"
	"selftune/internal/energy"
	"selftune/internal/obs"
)

// Online drives a live configurable cache through the heuristic without
// ever flushing it, the way the on-chip tuner hardware does: each candidate
// configuration is applied to the running cache and measured over the next
// window of accesses. Because the heuristic only grows size/associativity
// and only changes line size otherwise, every reconfiguration is flush-free
// (§3.3); the final settle to the chosen configuration is the only
// transition that may shrink, and its writeback cost is recorded.
type Online struct {
	cache  *cache.Configurable
	params *energy.Params
	window uint64
	warmup uint64
	meter  Meter

	req  chan cache.Config
	resp chan EvalResult
	done chan SearchResult
	quit chan struct{}

	pending    bool
	count      uint64
	warmupLeft uint64
	finished   bool
	aborted    bool
	result     SearchResult
	settleWB   uint64

	// rec and sessionID are the telemetry seam: every heuristic step is
	// recorded as one event keyed (session, window, step, config). fed
	// counts measurements consumed by the search — it is touched only by
	// the search goroutine, and on resume the transcript replay advances
	// it identically, so re-executed windows re-emit identical events.
	rec       obs.Recorder
	sessionID uint64
	fed       uint64

	// history records every window measurement handed to the search, in
	// order — the externally visible transcript of the search's state
	// machine. Because the heuristic is a deterministic function of its
	// measurement sequence, replaying history reconstructs the search
	// exactly; Snapshot/ResumeOnline (session.go) build on this.
	history []EvalResult

	// maxBytes and start define the constrained space the session searches:
	// maxBytes caps the footprint (0 = unconstrained) and start is the warm
	// re-search entry point (zero value = the space's smallest
	// configuration). Both are part of the snapshot so a resumed session
	// replays the identical restricted walk.
	maxBytes int
	start    cache.Config

	// searchSpan is the deterministic "tuner.search" begin/end pair wrapping
	// the whole search: begun at construction (window 0, step 0 of this
	// session ordinal), ended at settle with the work-unit duration
	// (configurations examined). A resumed session re-begins the span at the
	// identical coordinates, so kill/resume re-emits bit-identical span
	// events and coordinate deduplication reconstructs one span.
	searchSpan obs.Span
}

// Meter transforms a window's raw counters before they are priced — the
// seam through which counter-readout faults (internal/faults.Measurement
// semantics) reach the online tuner, and where real hardware would clip its
// counter widths. nil is a perfect readout.
type Meter func(cfg cache.Config, st cache.Stats) cache.Stats

// NewOnline starts a tuning session on c. window is the number of accesses
// each configuration is measured over (the hardware's measurement
// interval). The search begins at the smallest configuration.
func NewOnline(c *cache.Configurable, p *energy.Params, window uint64) *Online {
	return NewOnlineMetered(c, p, window, nil)
}

// NewOnlineMetered is NewOnline with a counter-readout meter. Implausible
// window readings (by Plausible) are re-measured over the next window; if
// the second window is implausible too the session abandons tuning and
// settles the cache on SafeConfig, with the session's Result marked
// Degraded. Accesses keep being served normally throughout — a broken
// counter never takes the cache down.
func NewOnlineMetered(c *cache.Configurable, p *energy.Params, window uint64, meter Meter) *Online {
	return NewOnlineObserved(c, p, window, meter, nil, 0)
}

// NewOnlineObserved is NewOnlineMetered with telemetry: every heuristic step
// is recorded on rec as a "tuner.step" event carrying the session ordinal,
// the measurement-window ordinal, the step ordinal and the configuration —
// the search trajectory as data. Recording is strictly observational; a nil
// (or disabled) recorder session behaves bit-identically to an observed one.
func NewOnlineObserved(c *cache.Configurable, p *energy.Params, window uint64, meter Meter, rec obs.Recorder, session uint64) *Online {
	return NewOnlineConstrained(c, p, window, meter, rec, session, 0, cache.Config{})
}

// NewOnlineConstrained is NewOnlineObserved with a capacity budget: the
// search walks the paper's space restricted to configurations of at most
// maxBytes (0 = unconstrained, see Space.Constrain), starting from start
// instead of the smallest configuration when start is non-zero — the warm
// re-search a fleet reallocation triggers. start must be a valid
// configuration within the budget (ClampToBudget produces one); the live
// cache is reconfigured to it before the first measurement window.
func NewOnlineConstrained(c *cache.Configurable, p *energy.Params, window uint64, meter Meter, rec obs.Recorder, session uint64, maxBytes int, start cache.Config) *Online {
	o := &Online{
		cache:     c,
		params:    p,
		window:    window,
		meter:     meter,
		rec:       obs.OrNop(rec),
		sessionID: session,
		// A quarter-window warmup after each reconfiguration keeps the
		// transition transient (blocks stranded by the remapping
		// re-missing once) out of the measurement, which would
		// otherwise bias the sweep against growth steps.
		warmup:   window / 4,
		req:      make(chan cache.Config),
		resp:     make(chan EvalResult),
		done:     make(chan SearchResult, 1),
		quit:     make(chan struct{}),
		maxBytes: maxBytes,
		start:    start,
	}
	// The search logic runs in its own goroutine; Evaluate blocks until
	// the measurement window completes. This reuses the exact heuristic
	// implementation for the online hardware behaviour.
	o.beginSearchSpan()
	o.startSearch(EvaluatorFunc(o.liveEvaluate))
	o.advance()
	return o
}

// beginSearchSpan opens the session's "tuner.search" span. It must run
// before the search goroutine can emit its first "tuner.step" (i.e. before
// startSearch for a fresh session, and before the transcript replay for a
// resumed one) so the begin event always precedes the steps it encloses.
func (o *Online) beginSearchSpan() {
	o.searchSpan = obs.BeginSpan(o.rec, nil, obs.Event{
		Name:    "tuner.search",
		Session: o.sessionID,
		Window:  o.fed,
		Fields:  []slog.Attr{slog.Int("budget_bytes", o.maxBytes)},
	})
}

// searchSpace is the (possibly budget-restricted, possibly warm-started)
// space this session's heuristic walks.
func (o *Online) searchSpace() Space {
	sp := DefaultSpace().Constrain(o.maxBytes)
	if o.start != (cache.Config{}) {
		sp.Start = ClampToBudget(o.start, o.maxBytes, DefaultSpace())
	}
	return sp
}

// MaxBytes is the session's capacity budget, 0 when unconstrained.
func (o *Online) MaxBytes() int { return o.maxBytes }

// startSearch launches the search goroutine over eval. The evaluator is
// wrapped to count measurements consumed (o.fed), which is the window
// coordinate telemetry events carry; both the counter and the trace hook
// run on the search goroutine only.
func (o *Online) startSearch(eval Evaluator) {
	counted := EvaluatorFunc(func(cfg cache.Config) EvalResult {
		r := eval.Evaluate(cfg)
		o.fed++
		return r
	})
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(abortSession); ok {
					return // Abort unwound the search
				}
				panic(r)
			}
		}()
		res := SearchTraced(counted, PaperOrder, o.searchSpace(), o.traceStep)
		o.done <- res
		close(o.req)
	}()
}

// traceStep records one heuristic decision. It runs on the search goroutine,
// strictly between receiving a measurement and requesting the next one, so
// it is ordered with (and never races) the access loop.
func (o *Online) traceStep(st SearchStep) {
	if !o.rec.Enabled() {
		return
	}
	win := o.fed
	if win > 0 {
		win-- // the window that produced this measurement
	}
	o.rec.Record(obs.Event{
		Name:    "tuner.step",
		Session: o.sessionID,
		Window:  win,
		Step:    uint64(st.Step),
		Config:  st.Cfg.String(),
		Fields: []slog.Attr{
			slog.String("phase", st.Phase.String()),
			slog.Float64("energy", st.Energy),
			slog.Bool("improved", st.Improved),
			slog.Bool("stop", st.Stop),
			slog.Bool("remeasured", st.Remeasured),
		},
	})
}

// liveEvaluate is the search side of the window rendezvous: request a
// configuration, block until Access completes a measurement window over it.
func (o *Online) liveEvaluate(cfg cache.Config) EvalResult {
	select {
	case o.req <- cfg:
	case <-o.quit:
		panic(abortSession{})
	}
	select {
	case r := <-o.resp:
		return r
	case <-o.quit:
		panic(abortSession{})
	}
}

// advance applies the search's next requested configuration, or completes.
func (o *Online) advance() {
	select {
	case res := <-o.done:
		o.finish(res)
	case cfg, ok := <-o.req:
		if !ok {
			// The search goroutine closed req after publishing its
			// result; the select may observe the close first.
			o.finish(<-o.done)
			return
		}
		o.apply(cfg)
		o.cache.ResetStats()
		o.count = 0
		o.warmupLeft = o.warmup
		o.pending = true
	}
}

func (o *Online) finish(res SearchResult) {
	o.result = res
	o.finished = true
	o.apply(res.Best.Cfg)
	// Close the search span first: its end (work units, not wall-clock)
	// precedes the settle decision it explains.
	o.searchSpan.End(
		slog.Uint64("work", uint64(res.NumExamined())),
		slog.String("unit", "configs"),
		slog.Uint64("windows", o.fed))
	if o.rec.Enabled() {
		fields := []slog.Attr{
			slog.Float64("energy", res.Best.Energy),
			slog.Int("examined", res.NumExamined()),
			slog.Bool("degraded", res.Degraded),
			slog.Uint64("settle_writebacks", o.settleWB),
		}
		if res.Fault != nil {
			fields = append(fields, slog.String("fault", res.Fault.Error()))
		}
		o.rec.Record(obs.Event{
			Name:    "tuner.settle",
			Session: o.sessionID,
			Window:  o.fed,
			Step:    uint64(res.NumExamined()),
			Config:  res.Best.Cfg.String(),
			Fields:  fields,
		})
	}
}

// apply reconfigures the live cache. Most transitions are flush-free
// growth; retreating from a rejected larger size to the sweep's best (and
// the final settle) shrinks, which way shutdown pays for by writing back
// only the dirty lines of the deactivated banks — never a full flush.
func (o *Online) apply(cfg cache.Config) {
	before := o.cache.Stats().SettleWritebacks
	o.cache.AllowShrink = true
	if err := o.cache.SetConfig(cfg); err != nil {
		panic("tuner: online transition rejected: " + err.Error())
	}
	o.cache.AllowShrink = false
	o.settleWB += o.cache.Stats().SettleWritebacks - before
}

// abortSession unwinds the search goroutine when Abort is called.
type abortSession struct{}

// Abort ends an unfinished session: the search goroutine unwinds, the cache
// keeps its current configuration, and subsequent Access calls behave as a
// plain cache. Harmless after completion.
func (o *Online) Abort() {
	if o.finished || o.aborted {
		return
	}
	o.aborted = true
	o.pending = false
	close(o.quit)
}

// Aborted reports whether the session was cancelled.
func (o *Online) Aborted() bool { return o.aborted }

// Close ends the session (see Abort) and releases the search goroutine. It
// is safe to call any number of times, before or after the search settles,
// and never returns an error; it exists so daemons can manage a session with
// the usual io.Closer discipline.
func (o *Online) Close() error {
	o.Abort()
	return nil
}

// CompletedWindows is the number of measurement windows fed to the search so
// far (each examined configuration costs one window; re-measures after an
// implausible reading cost one more).
func (o *Online) CompletedWindows() uint64 { return uint64(len(o.history)) }

// SettleWritebacks returns the dirty lines written back by shrinking
// transitions over the whole session (zero for instruction caches; small
// for data caches — compare FlushAblation for the largest-first ordering).
func (o *Online) SettleWritebacks() uint64 { return o.settleWB }

// Access feeds one reference through the cache and advances the tuning
// session when the window completes.
func (o *Online) Access(addr uint32, write bool) cache.AccessResult {
	r := o.cache.Access(addr, write)
	if o.pending {
		if o.warmupLeft > 0 {
			o.warmupLeft--
			if o.warmupLeft == 0 {
				o.cache.ResetStats()
			}
			return r
		}
		o.count++
		if o.count >= o.window {
			o.pending = false
			cfg := o.cache.Config()
			st := o.cache.Stats()
			if o.meter != nil {
				st = o.meter(cfg, st)
			}
			b := o.params.Evaluate(cfg, st)
			r := EvalResult{Cfg: cfg, Energy: b.Total(), Breakdown: b, Stats: st}
			o.history = append(o.history, r)
			o.resp <- r
			o.advance()
		}
	}
	return r
}

// Done reports whether the search has settled.
func (o *Online) Done() bool { return o.finished }

// Degraded reports that the session abandoned tuning after persistently
// implausible window readings and settled on SafeConfig instead.
func (o *Online) Degraded() bool { return o.finished && o.result.Degraded }

// Result returns the completed search (zero until Done).
func (o *Online) Result() SearchResult { return o.result }

// Cache returns the cache under tuning.
func (o *Online) Cache() *cache.Configurable { return o.cache }
