package tuner

import (
	"fmt"

	"selftune/internal/cache"
	"selftune/internal/energy"
	"selftune/internal/obs"
)

// This file makes an Online session snapshottable and resumable, the piece
// that lets a software tuner survive process death the way the paper's
// on-chip FSMD survives anything short of power loss. The key observation is
// that the heuristic is a pure function of its measurement sequence: the
// configurations it asks for, the sweeps it opens and closes, the incumbent
// it keeps — all of it is determined by the EvalResults it has been fed. So
// the exported state machine is simply that transcript (Online.history) plus
// the window geometry, and import is replay: feed the recorded measurements
// back through a fresh Search, which rebuilds its internal state exactly,
// then splice the live measurement loop back in where the transcript ends.
//
// Snapshots are only meaningful at window boundaries — mid-window the
// session's state includes half-measured counters that exist nowhere but in
// the live cache — so Snapshot refuses elsewhere. The companion cache.Image
// captures the cache contents at the same instant; together they make a
// kill+resume bit-identical to an uninterrupted run (the crash-equivalence
// property pinned by internal/experiments' chaos harness).

// SessionState is the complete externally held state of an Online session at
// a window boundary. It is plain data (no channels, no goroutines) so
// internal/checkpoint can persist it.
type SessionState struct {
	// Window is the measurement interval the session was created with.
	Window uint64
	// Applied is the configuration applied to the cache at the boundary
	// (the one the next window will measure, or the settled choice).
	Applied cache.Config
	// History is the transcript: every window measurement fed to the
	// search so far, in order.
	History []EvalResult
	// SettleWB is the settle-writeback total accumulated so far.
	SettleWB uint64
	// Finished and Aborted record a session that is no longer searching.
	Finished bool
	Aborted  bool
	// MaxBytes is the capacity budget the search was constrained to, 0 when
	// unconstrained. Start is the warm re-search entry configuration (zero
	// value = the space's smallest configuration). Both are replayed on
	// resume so the restricted walk continues identically.
	MaxBytes int
	Start    cache.Config
}

// AtWindowBoundary reports whether the session is exactly between
// measurement windows (including before the first access, and any time
// after the search finished or was aborted) — the only states Snapshot can
// capture faithfully.
func (o *Online) AtWindowBoundary() bool {
	if o.finished || o.aborted {
		return true
	}
	return o.pending && o.count == 0 && o.warmupLeft == o.warmup
}

// Snapshot exports the session's state machine. It must be called at a
// window boundary: immediately after an Access that completed a measurement
// window (or before any access, or after settle/abort). Mid-window it
// returns an error instead of a state that could not be resumed faithfully.
//
// The caller persists the returned state together with the cache's
// cache.Image taken at the same instant; ResumeOnline rebuilds the session
// from the pair.
func (o *Online) Snapshot() (SessionState, error) {
	if !o.AtWindowBoundary() {
		return SessionState{}, fmt.Errorf("tuner: session snapshot requested mid-window (%d of %d accesses measured)", o.count, o.window)
	}
	return SessionState{
		Window:   o.window,
		Applied:  o.cache.Config(),
		History:  append([]EvalResult(nil), o.history...),
		SettleWB: o.settleWB,
		Finished: o.finished,
		Aborted:  o.aborted,
		MaxBytes: o.maxBytes,
		Start:    o.start,
	}, nil
}

// resumeMismatch unwinds a replayed search whose requests diverge from the
// recorded transcript — a corrupt or mismatched snapshot.
type resumeMismatch struct{ err error }

// replaySearch reruns the heuristic over a recorded transcript — in the same
// (possibly budget-restricted) space the original session walked — and
// reports the state it reaches. complete is true when the transcript settles
// the search, in which case res is its result — recomputed, not stored, so it
// cannot drift from the transcript. An incomplete transcript (the search
// still wants more windows) is not an error; a transcript that diverges
// from the heuristic's deterministic request sequence is.
func replaySearch(history []EvalResult, space Space) (res SearchResult, complete bool, err error) {
	defer func() {
		if p := recover(); p != nil {
			switch m := p.(type) {
			case resumeMismatch:
				res, complete, err = SearchResult{}, false, m.err
			case abortSession:
				// Transcript exhausted mid-search: the search wants its
				// next live window. This unwinds the goroutine-free
				// replay the same way Abort unwinds a live session.
				res, complete, err = SearchResult{}, false, nil
			default:
				panic(p)
			}
		}
	}()
	i := 0
	res = SearchInSpace(EvaluatorFunc(func(cfg cache.Config) EvalResult {
		if i >= len(history) {
			panic(abortSession{})
		}
		r := history[i]
		if r.Cfg != cfg {
			panic(resumeMismatch{fmt.Errorf("tuner: resume transcript diverged at window %d: recorded %v, search requests %v", i, r.Cfg, cfg)})
		}
		i++
		return r
	}), PaperOrder, space)
	if i != len(history) {
		return SearchResult{}, false, fmt.Errorf("tuner: resume transcript has %d windows but the search consumed only %d", len(history), i)
	}
	return res, true, nil
}

// ResumeOnline rebuilds a tuning session from a SessionState exported by
// Snapshot. c must be the cache restored from the Image captured at the same
// boundary (its applied configuration is cross-checked). The resumed session
// continues the search mid-sweep: the recorded transcript is replayed
// through a fresh heuristic — rebuilding sweep position, candidate index and
// best-so-far energies exactly — and the live measurement loop takes over at
// the first window the transcript does not cover. meter plays the same role
// as in NewOnlineMetered and must be the same measurement seam the original
// session used for the continuation to be faithful.
func ResumeOnline(c *cache.Configurable, p *energy.Params, st SessionState, meter Meter) (*Online, error) {
	return ResumeOnlineObserved(c, p, st, meter, nil, 0)
}

// ResumeOnlineObserved is ResumeOnline with telemetry (see NewOnlineObserved).
// The replayed transcript prefix re-emits its "tuner.step" events with
// coordinates identical to the first life's — the determinism contract that
// lets a killed-and-resumed daemon's event log be deduplicated by
// (session, window, step) instead of diverging.
func ResumeOnlineObserved(c *cache.Configurable, p *energy.Params, st SessionState, meter Meter, rec obs.Recorder, session uint64) (*Online, error) {
	if st.Window == 0 {
		return nil, fmt.Errorf("tuner: resume: zero measurement window")
	}
	if c.Config() != st.Applied {
		return nil, fmt.Errorf("tuner: resume: cache is configured %v but the snapshot applied %v", c.Config(), st.Applied)
	}
	o := &Online{
		cache:     c,
		params:    p,
		window:    st.Window,
		meter:     meter,
		rec:       obs.OrNop(rec),
		sessionID: session,
		warmup:    st.Window / 4,
		settleWB:  st.SettleWB,
		history:   append([]EvalResult(nil), st.History...),
		req:       make(chan cache.Config),
		resp:      make(chan EvalResult),
		done:      make(chan SearchResult, 1),
		quit:      make(chan struct{}),
		maxBytes:  st.MaxBytes,
		start:     st.Start,
	}
	if st.Aborted {
		o.aborted = true
		return o, nil
	}
	if st.Finished {
		// The transcript contains the whole search; recompute its result
		// (including the Degraded path) instead of trusting a separately
		// stored copy that could drift from it.
		res, complete, err := replaySearch(st.History, o.searchSpace())
		if err != nil {
			return nil, err
		}
		if !complete {
			return nil, fmt.Errorf("tuner: resume: snapshot marked finished but its %d-window transcript does not settle the search", len(st.History))
		}
		if res.Best.Cfg != st.Applied {
			return nil, fmt.Errorf("tuner: resume: settled snapshot applied %v but the transcript settles on %v", st.Applied, res.Best.Cfg)
		}
		o.finished = true
		o.result = res
		return o, nil
	}

	// Active session: replay the transcript inside the search goroutine,
	// then hand over to the live window loop. A transcript that diverges
	// from the deterministic request sequence, or that unexpectedly
	// completes the search, is a corrupt snapshot and fails construction.
	mismatch := make(chan error, 1)
	idx := 0
	// Re-begin the search span before the transcript replay: coordinates
	// (session ordinal, window 0) match the first life's begin exactly, so
	// the re-emitted span event is bit-identical and dedupes away.
	o.beginSearchSpan()
	o.startSearch(EvaluatorFunc(func(cfg cache.Config) EvalResult {
		if idx < len(st.History) {
			r := st.History[idx]
			if r.Cfg != cfg {
				mismatch <- fmt.Errorf("tuner: resume transcript diverged at window %d: recorded %v, search requests %v", idx, r.Cfg, cfg)
				panic(abortSession{})
			}
			idx++
			return r
		}
		return o.liveEvaluate(cfg)
	}))
	// Re-arm exactly like advance(): the first live request must be the
	// configuration that was applied at the boundary. Applying it again is
	// a no-op reconfiguration (SetConfig of the current configuration),
	// so the resumed window starts from the restored cache image with a
	// fresh warmup — the same state the original process was in.
	select {
	case err := <-mismatch:
		return nil, err
	case res := <-o.done:
		_ = res
		return nil, fmt.Errorf("tuner: resume: snapshot marked mid-search but its %d-window transcript settles the search", len(st.History))
	case cfg, ok := <-o.req:
		if !ok {
			return nil, fmt.Errorf("tuner: resume: search ended without a result")
		}
		if cfg != st.Applied {
			return nil, fmt.Errorf("tuner: resume: search requests %v next but the snapshot applied %v", cfg, st.Applied)
		}
		o.apply(cfg)
		o.cache.ResetStats()
		o.count = 0
		o.warmupLeft = o.warmup
		o.pending = true
	}
	return o, nil
}
