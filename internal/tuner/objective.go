package tuner

import "selftune/internal/cache"

// Objective maps a measured configuration to the scalar the search
// minimises. The paper's tuner minimises total memory-access energy; the
// authors' follow-up work also considers performance-aware objectives,
// which the same heuristic supports unchanged — only the datapath's
// computed figure differs.
type Objective func(EvalResult) float64

// EnergyObjective is the paper's Equation 1 total.
func EnergyObjective(r EvalResult) float64 { return r.Energy }

// EDPObjective is the energy-delay product: energy times the interval's
// cycles. It penalises configurations that save energy by stalling (small
// caches with high miss rates) and favours the performance-balanced points.
func EDPObjective(r EvalResult) float64 {
	return r.Energy * float64(r.Breakdown.Cycles)
}

// DelayCapObjective minimises energy among configurations whose cycle count
// stays within slack (e.g. 1.05 = 5% slowdown) of the best cycle count seen
// so far; configurations beyond the cap are heavily penalised. It models
// "lowest energy subject to a performance constraint" tuning relative to a
// baseline measurement.
func DelayCapObjective(baselineCycles uint64, slack float64) Objective {
	cap := float64(baselineCycles) * slack
	return func(r EvalResult) float64 {
		if float64(r.Breakdown.Cycles) > cap {
			// Still ordered (prefer the least-slow violator), but
			// strictly after every in-budget configuration.
			return 1e6 * r.Energy * (float64(r.Breakdown.Cycles) / cap)
		}
		return r.Energy
	}
}

// SearchObjective runs the heuristic minimising an arbitrary objective over
// an arbitrary space. Search/SearchPaper are the energy-objective wrappers.
func SearchObjective(eval Evaluator, order []Param, space Space, obj Objective) SearchResult {
	wrapped := EvaluatorFunc(func(cfg cache.Config) EvalResult {
		r := eval.Evaluate(cfg)
		r.Energy = obj(r)
		return r
	})
	res := SearchInSpace(wrapped, order, space)
	restore(&res, eval)
	return res
}

// ExhaustiveObjective measures every configuration under an objective.
func ExhaustiveObjective(eval Evaluator, configs []cache.Config, obj Objective) SearchResult {
	wrapped := EvaluatorFunc(func(cfg cache.Config) EvalResult {
		r := eval.Evaluate(cfg)
		r.Energy = obj(r)
		return r
	})
	res := ExhaustiveConfigs(wrapped, configs)
	restore(&res, eval)
	return res
}

// restore rewrites the recorded results with the true energies (the
// objective value only steered the search).
func restore(res *SearchResult, eval Evaluator) {
	for i := range res.Examined {
		res.Examined[i] = eval.Evaluate(res.Examined[i].Cfg)
	}
	res.Best = eval.Evaluate(res.Best.Cfg)
}
