package tuner

import (
	"selftune/internal/cache"
	"selftune/internal/energy"
	"selftune/internal/engine"
	"selftune/internal/trace"
)

// ScalableEvaluator replays a recorded stream through a fresh scalable
// cache per configuration, pricing it with the geometry-aware energy model.
// It is the §3.4 larger-cache study's counterpart of TraceEvaluator and,
// like it, a thin adapter over the replay engine (memoised, drained,
// concurrency-safe).
type ScalableEvaluator struct {
	geo cache.Geometry
	eng *engine.Engine[cache.Config]
}

// NewScalableEvaluator builds an evaluator for the geometry.
func NewScalableEvaluator(geo cache.Geometry, accs []trace.Access, p *energy.Params) *ScalableEvaluator {
	return &ScalableEvaluator{geo: geo, eng: engine.New(accs, engine.Scalable(geo, p))}
}

// Evaluate implements Evaluator.
func (e *ScalableEvaluator) Evaluate(cfg cache.Config) EvalResult {
	return e.eng.Evaluate(cfg)
}

// EvaluateAll implements BatchEvaluator.
func (e *ScalableEvaluator) EvaluateAll(cfgs []cache.Config, workers int) []EvalResult {
	return e.eng.EvaluateAll(cfgs, workers)
}

// Remeasure implements Remeasurer (see TraceEvaluator.Remeasure).
func (e *ScalableEvaluator) Remeasure(cfg cache.Config) EvalResult {
	return e.eng.Reevaluate(cfg)
}

// SearchScalable runs the paper-ordered heuristic over a geometry's space.
func SearchScalable(geo cache.Geometry, accs []trace.Access, p *energy.Params) SearchResult {
	return SearchInSpace(NewScalableEvaluator(geo, accs, p), PaperOrder, GeometrySpace(geo))
}
