package tuner

import (
	"selftune/internal/cache"
	"selftune/internal/energy"
	"selftune/internal/trace"
)

// ScalableEvaluator replays a recorded stream through a fresh scalable
// cache per configuration, pricing it with the geometry-aware energy model.
// It is the §3.4 larger-cache study's counterpart of TraceEvaluator.
type ScalableEvaluator struct {
	geo   cache.Geometry
	accs  []trace.Access
	model energy.ScalableModel
	memo  map[cache.Config]EvalResult
}

// NewScalableEvaluator builds an evaluator for the geometry.
func NewScalableEvaluator(geo cache.Geometry, accs []trace.Access, p *energy.Params) *ScalableEvaluator {
	return &ScalableEvaluator{
		geo:   geo,
		accs:  accs,
		model: energy.ScalableModel{P: p, Geo: geo},
		memo:  map[cache.Config]EvalResult{},
	}
}

// Evaluate implements Evaluator.
func (e *ScalableEvaluator) Evaluate(cfg cache.Config) EvalResult {
	if r, ok := e.memo[cfg]; ok {
		return r
	}
	c := cache.MustScalable(e.geo, cfg)
	for _, a := range e.accs {
		c.Access(a.Addr, a.IsWrite())
	}
	st := c.Stats()
	st.Writebacks += uint64(c.DirtyLines()) // end-of-interval drain
	b := e.model.Evaluate(cfg, st)
	r := EvalResult{Cfg: cfg, Energy: b.Total(), Breakdown: b, Stats: st}
	e.memo[cfg] = r
	return r
}

// SearchScalable runs the paper-ordered heuristic over a geometry's space.
func SearchScalable(geo cache.Geometry, accs []trace.Access, p *energy.Params) SearchResult {
	return SearchInSpace(NewScalableEvaluator(geo, accs, p), PaperOrder, GeometrySpace(geo))
}
