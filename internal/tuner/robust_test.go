package tuner

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"selftune/internal/cache"
	"selftune/internal/energy"
	"selftune/internal/engine"
	"selftune/internal/faults"
	"selftune/internal/trace"
	"selftune/internal/workload"
)

func dataTrace(t *testing.T, name string, n int) []trace.Access {
	t.Helper()
	prof, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown profile %q", name)
	}
	_, data := trace.Split(trace.NewSliceSource(prof.Generate(n)))
	return data
}

func TestPlausible(t *testing.T) {
	good := EvalResult{
		Cfg:    cache.BaseConfig(),
		Energy: 1.0,
		Stats:  cache.Stats{Accesses: 100, Hits: 90, Misses: 10, Writes: 20},
	}
	if err := Plausible(good); err != nil {
		t.Errorf("consistent reading rejected: %v", err)
	}
	// Synthetic evaluators (tests, the FSMD model) price configurations
	// without counters; they must pass.
	if err := Plausible(EvalResult{Cfg: cache.BaseConfig(), Energy: 5}); err != nil {
		t.Errorf("counter-free synthetic reading rejected: %v", err)
	}

	bad := []struct {
		name string
		r    EvalResult
	}{
		{"replay error", EvalResult{Cfg: good.Cfg, Energy: 1, Stats: good.Stats, Err: errors.New("boom")}},
		{"NaN energy", EvalResult{Cfg: good.Cfg, Energy: math.NaN(), Stats: good.Stats}},
		{"infinite energy", EvalResult{Cfg: good.Cfg, Energy: math.Inf(1), Stats: good.Stats}},
		{"negative energy", EvalResult{Cfg: good.Cfg, Energy: -1, Stats: good.Stats}},
		{"stuck counters", EvalResult{Cfg: good.Cfg, Energy: 0}},
		{"zero accesses", EvalResult{Cfg: good.Cfg, Energy: 1, Stats: cache.Stats{Misses: 5}}},
		{"hits+misses mismatch", EvalResult{Cfg: good.Cfg, Energy: 1,
			Stats: cache.Stats{Accesses: 100, Hits: 50, Misses: 10}}},
		{"writes exceed accesses", EvalResult{Cfg: good.Cfg, Energy: 1,
			Stats: cache.Stats{Accesses: 100, Hits: 90, Misses: 10, Writes: 200}}},
	}
	for _, tc := range bad {
		if Plausible(tc.r) == nil {
			t.Errorf("%s accepted as plausible", tc.name)
		}
	}
}

// TestOnlineDegradesGracefullyUnderStuckCounters is the acceptance-pinned
// graceful-degradation path: with the counter readout wedged (every window
// reads all zeros), the online tuner abandons the search, settles the live
// cache on SafeConfig, and keeps serving accesses — no panic, no wedged
// session.
func TestOnlineDegradesGracefullyUnderStuckCounters(t *testing.T) {
	prof, _ := workload.ByName("crc")
	c := cache.MustConfigurable(cache.MinConfig())
	stuck := func(cache.Config, cache.Stats) cache.Stats { return cache.Stats{} }
	o := NewOnlineMetered(c, energy.DefaultParams(), 5000, stuck)
	src := trace.OnlyData(prof.NewSource())
	for i := 0; i < 200_000 && !o.Done(); i++ {
		a, _ := src.Next()
		o.Access(a.Addr, a.IsWrite())
	}
	if !o.Done() {
		t.Fatal("session did not settle under stuck counters")
	}
	if !o.Degraded() {
		t.Fatal("session trusted all-zero readings instead of degrading")
	}
	res := o.Result()
	if res.Fault == nil {
		t.Error("degraded result carries no fault")
	}
	if res.Best.Cfg != SafeConfig() {
		t.Errorf("degraded session settled on %v, want SafeConfig %v", res.Best.Cfg, SafeConfig())
	}
	if o.Cache().Config() != SafeConfig() {
		t.Errorf("live cache is at %v, want SafeConfig %v", o.Cache().Config(), SafeConfig())
	}
	// The cache must keep working as a plain cache after degradation.
	for i := 0; i < 20_000; i++ {
		a, _ := src.Next()
		o.Access(a.Addr, a.IsWrite())
	}
	if o.Cache().Config() != SafeConfig() {
		t.Error("configuration drifted after degradation")
	}
}

// TestOnlineMeterTransientFaultRemeasures pins the middle step of the
// policy: a single glitched window is re-measured over the next window and
// the session completes without degrading.
func TestOnlineMeterTransientFaultRemeasures(t *testing.T) {
	prof, _ := workload.ByName("crc")
	c := cache.MustConfigurable(cache.MinConfig())
	windows := 0
	glitchOnce := func(cfg cache.Config, st cache.Stats) cache.Stats {
		windows++
		if windows == 1 {
			return cache.Stats{} // first window's readout never latches
		}
		return st
	}
	o := NewOnlineMetered(c, energy.DefaultParams(), 5000, glitchOnce)
	src := trace.OnlyData(prof.NewSource())
	for i := 0; i < 500_000 && !o.Done(); i++ {
		a, _ := src.Next()
		o.Access(a.Addr, a.IsWrite())
	}
	if !o.Done() {
		t.Fatal("session did not complete")
	}
	if o.Degraded() {
		t.Fatalf("one transient glitch degraded the session: %v", o.Result().Fault)
	}
	if windows < 3 {
		t.Errorf("measured %d windows; the glitched window should have been re-measured", windows)
	}
}

// TestOnlineIdentityMeterChangesNothing pins that the meter hook is a pure
// observation point: an identity meter yields a bit-identical session.
func TestOnlineIdentityMeterChangesNothing(t *testing.T) {
	run := func(meter Meter) SearchResult {
		prof, _ := workload.ByName("adpcm")
		c := cache.MustConfigurable(cache.MinConfig())
		o := NewOnlineMetered(c, energy.DefaultParams(), 4000, meter)
		src := trace.OnlyData(prof.NewSource())
		for i := 0; i < 500_000 && !o.Done(); i++ {
			a, _ := src.Next()
			o.Access(a.Addr, a.IsWrite())
		}
		if !o.Done() {
			t.Fatal("session did not complete")
		}
		return o.Result()
	}
	plain := run(nil)
	identity := run(func(_ cache.Config, st cache.Stats) cache.Stats { return st })
	if !reflect.DeepEqual(plain, identity) {
		t.Error("identity meter changed the session outcome")
	}
}

// TestOfflineSearchDegradesUnderPersistentStuck wires the fault injector
// through a real replay engine: with the counter latch permanently stuck,
// the re-measure (a genuinely fresh replay via Remeasurer) also fails and
// the search falls back to SafeConfig.
func TestOfflineSearchDegradesUnderPersistentStuck(t *testing.T) {
	p := energy.DefaultParams()
	accs := dataTrace(t, "crc", 20_000)
	mf := &faults.Measurement{Seed: 5, StuckRate: 1}
	ev := EngineEvaluator{Eng: engine.New(accs, faults.Wrap(engine.Configurable(p), mf))}
	res := SearchPaper(ev)
	if !res.Degraded {
		t.Fatal("search trusted permanently stuck counters")
	}
	if res.Best.Cfg != SafeConfig() {
		t.Errorf("degraded search chose %v, want SafeConfig %v", res.Best.Cfg, SafeConfig())
	}
	if res.Fault == nil {
		t.Error("degraded search carries no fault")
	}
}

// flakyOnce returns garbage the first time each configuration is measured
// and delegates from then on — every reading heals on its re-measure.
type flakyOnce struct {
	inner  Evaluator
	failed map[cache.Config]bool
}

func (f *flakyOnce) Evaluate(cfg cache.Config) EvalResult {
	if !f.failed[cfg] {
		f.failed[cfg] = true
		return EvalResult{Cfg: cfg} // all-zero stuck reading
	}
	return f.inner.Evaluate(cfg)
}

// TestSearchRemeasureClearsTransientFault pins that one implausible reading
// per configuration costs a re-measure, not the search: the outcome matches
// the clean search exactly.
func TestSearchRemeasureClearsTransientFault(t *testing.T) {
	p := energy.DefaultParams()
	accs := dataTrace(t, "adpcm", 30_000)
	clean := SearchPaper(NewTraceEvaluator(accs, p))
	flaky := SearchPaper(&flakyOnce{
		inner:  NewTraceEvaluator(accs, p),
		failed: map[cache.Config]bool{},
	})
	if flaky.Degraded {
		t.Fatalf("transient faults degraded the search: %v", flaky.Fault)
	}
	if !reflect.DeepEqual(clean, flaky) {
		t.Error("search under heal-on-remeasure faults diverged from the clean search")
	}
}

// TestExhaustiveSkipsImplausibleReadings pins that one crashed configuration
// costs one data point, not the sweep — and that an entirely failed sweep
// degrades to SafeConfig instead of electing garbage.
func TestExhaustiveSkipsImplausibleReadings(t *testing.T) {
	// Every 2 KB reading fails; the optimum reduction must elect the best
	// surviving configuration (4 KB under a size-proportional cost).
	partial := EvaluatorFunc(func(cfg cache.Config) EvalResult {
		if cfg.SizeBytes == 2048 {
			return EvalResult{Cfg: cfg, Err: errors.New("replay crashed")}
		}
		return EvalResult{Cfg: cfg, Energy: float64(cfg.SizeBytes)}
	})
	res := Exhaustive(partial)
	if res.Degraded {
		t.Fatal("partial failures degraded an exhaustive sweep with survivors")
	}
	if res.Best.Cfg.SizeBytes != 4096 {
		t.Errorf("best = %v, want a 4K config (smallest plausible)", res.Best.Cfg)
	}
	if res.NumExamined() != 27 {
		t.Errorf("examined %d, want all 27 recorded (including failures)", res.NumExamined())
	}

	allBad := EvaluatorFunc(func(cfg cache.Config) EvalResult {
		return EvalResult{Cfg: cfg, Err: errors.New("replay crashed")}
	})
	res = Exhaustive(allBad)
	if !res.Degraded || res.Fault == nil {
		t.Fatal("fully failed sweep did not degrade")
	}
	if res.Best.Cfg != SafeConfig() {
		t.Errorf("fully failed sweep chose %v, want SafeConfig", res.Best.Cfg)
	}
}
