// Package tuner implements the paper's self-tuning search: the Figure 6
// heuristic (size, then line size, then associativity, then way prediction,
// each swept in the flush-free direction), an exhaustive baseline, the
// alternative parameter ordering the paper compares against, the on-line
// no-flush tuner that drives a live cache through successive measurement
// windows, the §3.5 FSMD hardware model with its gate/area/power estimate,
// the largest-first flush ablation (§4), and the §3.4 multilevel-hierarchy
// generalisation.
package tuner

import (
	"selftune/internal/cache"
	"selftune/internal/energy"
	"selftune/internal/engine"
	"selftune/internal/obs"
	"selftune/internal/trace"
)

// EvalResult is the outcome of measuring one configuration: the replay
// engine's result keyed by the four-bank Config (Cfg, Energy, Breakdown,
// Stats).
type EvalResult = engine.Result[cache.Config]

// Evaluator measures the energy of one cache configuration.
type Evaluator interface {
	Evaluate(cfg cache.Config) EvalResult
}

// BatchEvaluator is an Evaluator that can fan a configuration list out
// across the replay engine's worker pool. Both trace-replay evaluators
// implement it; the exhaustive sweeps use it when available.
type BatchEvaluator interface {
	Evaluator
	// EvaluateAll measures every configuration on up to workers
	// goroutines (non-positive means GOMAXPROCS), returning results in
	// input order, bit-identical to serial evaluation.
	EvaluateAll(cfgs []cache.Config, workers int) []EvalResult
}

// TraceEvaluator replays a recorded reference stream through a fresh cache
// per configuration — the paper's Table 1 methodology (full-benchmark
// simulation per configuration). It is a thin adapter over the replay
// engine: results are memoised there, including the end-of-interval
// dirty-line drain, and Evaluate is safe for concurrent use.
type TraceEvaluator struct {
	eng    *engine.Engine[cache.Config]
	params *energy.Params
}

// NewTraceEvaluator builds an evaluator over a recorded stream. The stream
// should be a single cache's view: instruction fetches for an I-cache study
// or data references for a D-cache study (use trace.Split).
func NewTraceEvaluator(accs []trace.Access, p *energy.Params) *TraceEvaluator {
	return &TraceEvaluator{eng: engine.New(accs, engine.Configurable(p)), params: p}
}

// Evaluate implements Evaluator.
func (e *TraceEvaluator) Evaluate(cfg cache.Config) EvalResult {
	return e.eng.Evaluate(cfg)
}

// EvaluateAll implements BatchEvaluator.
func (e *TraceEvaluator) EvaluateAll(cfgs []cache.Config, workers int) []EvalResult {
	return e.eng.EvaluateAll(cfgs, workers)
}

// Remeasure implements Remeasurer: it drops the engine's memoised result and
// replays cfg afresh, so a transient measurement fault gets a second chance
// to clear instead of being served back from the memo.
func (e *TraceEvaluator) Remeasure(cfg cache.Config) EvalResult {
	return e.eng.Reevaluate(cfg)
}

// Observe attaches a telemetry recorder to the underlying replay engine
// (per-configuration replay events). Call it before the first Evaluate; it
// returns the evaluator for chaining.
func (e *TraceEvaluator) Observe(rec obs.Recorder) *TraceEvaluator {
	e.eng.Rec = rec
	return e
}

// Engine exposes the underlying replay engine (its memoiser counters feed
// the metrics registry).
func (e *TraceEvaluator) Engine() *engine.Engine[cache.Config] { return e.eng }

// Params exposes the energy model used.
func (e *TraceEvaluator) Params() *energy.Params { return e.params }

// EngineEvaluator adapts an arbitrary four-bank replay engine — typically
// one whose model is wrapped with fault injectors — to the Evaluator,
// BatchEvaluator and Remeasurer interfaces. TraceEvaluator is the clean
// special case of this.
type EngineEvaluator struct {
	Eng *engine.Engine[cache.Config]
}

// Evaluate implements Evaluator.
func (e EngineEvaluator) Evaluate(cfg cache.Config) EvalResult { return e.Eng.Evaluate(cfg) }

// EvaluateAll implements BatchEvaluator.
func (e EngineEvaluator) EvaluateAll(cfgs []cache.Config, workers int) []EvalResult {
	return e.Eng.EvaluateAll(cfgs, workers)
}

// Remeasure implements Remeasurer.
func (e EngineEvaluator) Remeasure(cfg cache.Config) EvalResult { return e.Eng.Reevaluate(cfg) }

// EvaluatorFunc adapts a function to the Evaluator interface.
type EvaluatorFunc func(cfg cache.Config) EvalResult

// Evaluate implements Evaluator.
func (f EvaluatorFunc) Evaluate(cfg cache.Config) EvalResult { return f(cfg) }
