// Package tuner implements the paper's self-tuning search: the Figure 6
// heuristic (size, then line size, then associativity, then way prediction,
// each swept in the flush-free direction), an exhaustive baseline, the
// alternative parameter ordering the paper compares against, the on-line
// no-flush tuner that drives a live cache through successive measurement
// windows, the §3.5 FSMD hardware model with its gate/area/power estimate,
// the largest-first flush ablation (§4), and the §3.4 multilevel-hierarchy
// generalisation.
package tuner

import (
	"selftune/internal/cache"
	"selftune/internal/energy"
	"selftune/internal/trace"
)

// EvalResult is the outcome of measuring one configuration.
type EvalResult struct {
	// Cfg is the configuration measured.
	Cfg cache.Config
	// Energy is the Equation 1 total the tuner minimises.
	Energy float64
	// Breakdown decomposes Energy.
	Breakdown energy.Breakdown
	// Stats are the interval counters.
	Stats cache.Stats
}

// Evaluator measures the energy of one cache configuration.
type Evaluator interface {
	Evaluate(cfg cache.Config) EvalResult
}

// TraceEvaluator replays a recorded reference stream through a fresh cache
// per configuration — the paper's Table 1 methodology (full-benchmark
// simulation per configuration). Results are memoised.
type TraceEvaluator struct {
	accs   []trace.Access
	params *energy.Params
	memo   map[cache.Config]EvalResult
}

// NewTraceEvaluator builds an evaluator over a recorded stream. The stream
// should be a single cache's view: instruction fetches for an I-cache study
// or data references for a D-cache study (use trace.Split).
func NewTraceEvaluator(accs []trace.Access, p *energy.Params) *TraceEvaluator {
	return &TraceEvaluator{accs: accs, params: p, memo: map[cache.Config]EvalResult{}}
}

// Evaluate implements Evaluator.
func (e *TraceEvaluator) Evaluate(cfg cache.Config) EvalResult {
	if r, ok := e.memo[cfg]; ok {
		return r
	}
	c := cache.MustConfigurable(cfg)
	for _, a := range e.accs {
		c.Access(a.Addr, a.IsWrite())
	}
	st := c.Stats()
	// Drain: charge the dirty lines still resident at interval end as
	// writebacks. Without this a larger cache gets credit for merely
	// postponing write traffic past the measurement horizon, which would
	// bias every size comparison upward.
	st.Writebacks += uint64(c.DirtyLines())
	b := e.params.Evaluate(cfg, st)
	r := EvalResult{Cfg: cfg, Energy: b.Total(), Breakdown: b, Stats: st}
	e.memo[cfg] = r
	return r
}

// Params exposes the energy model used.
func (e *TraceEvaluator) Params() *energy.Params { return e.params }

// EvaluatorFunc adapts a function to the Evaluator interface.
type EvaluatorFunc func(cfg cache.Config) EvalResult

// Evaluate implements Evaluator.
func (f EvaluatorFunc) Evaluate(cfg cache.Config) EvalResult { return f(cfg) }
