// Package asm is a two-pass assembler for the mini MIPS-like ISA (package
// isa). It supports labels, .text/.data sections, data directives and the
// common MIPS pseudo-instructions, which is enough to write the Powerstone
// kernels the paper's benchmark suite draws from.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"selftune/internal/isa"
)

// Default section base addresses (SPIM-like layout).
const (
	TextBase = 0x00400000
	DataBase = 0x10010000
	StackTop = 0x7ffff000
	HeapBase = 0x10040000
)

// Program is an assembled, loadable image.
type Program struct {
	// Entry is the initial PC (the "main" label if present, else TextBase).
	Entry uint32
	// TextBase/Text are the code section.
	TextBase uint32
	Text     []uint32
	// DataBase/Data are the initialised data section.
	DataBase uint32
	Data     []byte
	// Symbols maps labels to addresses.
	Symbols map[string]uint32
}

type section int

const (
	secText section = iota
	secData
)

type item struct {
	line    int
	label   string
	mnem    string
	args    []string
	rawLine string
}

type asmError struct {
	line int
	msg  string
}

func (e asmError) Error() string { return fmt.Sprintf("asm: line %d: %s", e.line, e.msg) }

func errf(line int, format string, a ...any) error {
	return asmError{line: line, msg: fmt.Sprintf(format, a...)}
}

// Assemble translates source text into a Program.
func Assemble(src string) (*Program, error) {
	items, err := parse(src)
	if err != nil {
		return nil, err
	}
	p := &Program{TextBase: TextBase, DataBase: DataBase, Symbols: map[string]uint32{}}

	// Pass 1: lay out sections and record symbol addresses.
	sec := secText
	textPC := uint32(TextBase)
	dataPC := uint32(DataBase)
	for _, it := range items {
		if it.label != "" {
			if _, dup := p.Symbols[it.label]; dup {
				return nil, errf(it.line, "duplicate label %q", it.label)
			}
			if sec == secText {
				p.Symbols[it.label] = textPC
			} else {
				p.Symbols[it.label] = dataPC
			}
		}
		if it.mnem == "" {
			continue
		}
		if strings.HasPrefix(it.mnem, ".") {
			var err error
			sec, textPC, dataPC, err = sizeDirective(it, sec, textPC, dataPC, nil)
			if err != nil {
				return nil, err
			}
			continue
		}
		if sec != secText {
			return nil, errf(it.line, "instruction %q outside .text", it.mnem)
		}
		n, err := instWords(it)
		if err != nil {
			return nil, err
		}
		textPC += uint32(4 * n)
	}

	// Pass 2: encode.
	sec = secText
	textPC = TextBase
	dataPC = DataBase
	for _, it := range items {
		if it.mnem == "" {
			continue
		}
		if strings.HasPrefix(it.mnem, ".") {
			var err error
			sec, textPC, dataPC, err = sizeDirective(it, sec, textPC, dataPC, p)
			if err != nil {
				return nil, err
			}
			continue
		}
		words, err := encodeInst(it, textPC, p.Symbols)
		if err != nil {
			return nil, err
		}
		p.Text = append(p.Text, words...)
		textPC += uint32(4 * len(words))
	}

	if entry, ok := p.Symbols["main"]; ok {
		p.Entry = entry
	} else {
		p.Entry = TextBase
	}
	return p, nil
}

// parse splits source into labelled items.
func parse(src string) ([]item, error) {
	var items []item
	for ln, line := range strings.Split(src, "\n") {
		lineNo := ln + 1
		// Strip comments, respecting string literals.
		line = stripComment(line)
		line = strings.TrimSpace(line)
		for line != "" {
			// Peel leading labels.
			if i := strings.Index(line, ":"); i >= 0 && isLabel(line[:i]) && !strings.ContainsAny(line[:i], " \t\"") {
				items = append(items, item{line: lineNo, label: line[:i]})
				line = strings.TrimSpace(line[i+1:])
				continue
			}
			break
		}
		if line == "" {
			continue
		}
		mnem, rest, _ := strings.Cut(line, " ")
		if tab, trest, ok := strings.Cut(line, "\t"); ok && len(tab) < len(mnem) {
			mnem, rest = tab, trest
		}
		mnem = strings.ToLower(strings.TrimSpace(mnem))
		it := item{line: lineNo, mnem: mnem, rawLine: line}
		if mnem == ".asciiz" || mnem == ".ascii" {
			it.args = []string{strings.TrimSpace(rest)}
		} else {
			for _, a := range strings.Split(rest, ",") {
				a = strings.TrimSpace(a)
				if a != "" {
					it.args = append(it.args, a)
				}
			}
		}
		items = append(items, it)
	}
	return items, nil
}

func stripComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			inStr = !inStr
		case '#':
			if !inStr {
				return line[:i]
			}
		}
	}
	return line
}

func isLabel(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// sizeDirective advances location counters for a directive; when p != nil it
// also emits data bytes (pass 2).
func sizeDirective(it item, sec section, textPC, dataPC uint32, p *Program) (section, uint32, uint32, error) {
	emit := func(b byte) {
		if p != nil {
			p.Data = append(p.Data, b)
		}
		dataPC++
	}
	switch it.mnem {
	case ".text":
		return secText, textPC, dataPC, nil
	case ".data":
		return secData, textPC, dataPC, nil
	case ".globl", ".global", ".ent", ".end", ".set":
		return sec, textPC, dataPC, nil
	}
	// Everything below emits bytes; keep data in .data (jump tables and
	// constants live there; the text image is word-granular).
	if sec != secData {
		return sec, 0, 0, errf(it.line, "data directive %s outside .data", it.mnem)
	}
	switch it.mnem {
	case ".align":
		if len(it.args) != 1 {
			return sec, 0, 0, errf(it.line, ".align needs one argument")
		}
		n, err := parseInt(it.args[0], nil, it.line)
		if err != nil {
			return sec, 0, 0, err
		}
		align := uint32(1) << uint(n)
		for (sectionPC(sec, textPC, dataPC) % align) != 0 {
			emit(0)
		}
		return sec, textPC, dataPC, nil
	case ".space":
		if len(it.args) != 1 {
			return sec, 0, 0, errf(it.line, ".space needs one argument")
		}
		n, err := parseInt(it.args[0], nil, it.line)
		if err != nil {
			return sec, 0, 0, err
		}
		for i := int64(0); i < n; i++ {
			emit(0)
		}
		return sec, textPC, dataPC, nil
	case ".byte", ".half", ".word":
		width := map[string]int{".byte": 1, ".half": 2, ".word": 4}[it.mnem]
		var syms map[string]uint32
		if p != nil {
			syms = p.Symbols
		}
		for _, a := range it.args {
			var v int64
			if p != nil {
				var err error
				v, err = parseInt(a, syms, it.line)
				if err != nil {
					return sec, 0, 0, err
				}
			}
			for i := 0; i < width; i++ {
				emit(byte(v >> (8 * i)))
			}
		}
		return sec, textPC, dataPC, nil
	case ".asciiz", ".ascii":
		if len(it.args) != 1 {
			return sec, 0, 0, errf(it.line, "%s needs a string", it.mnem)
		}
		s, err := strconv.Unquote(it.args[0])
		if err != nil {
			return sec, 0, 0, errf(it.line, "bad string %s: %v", it.args[0], err)
		}
		for i := 0; i < len(s); i++ {
			emit(s[i])
		}
		if it.mnem == ".asciiz" {
			emit(0)
		}
		return sec, textPC, dataPC, nil
	}
	return sec, 0, 0, errf(it.line, "unknown directive %s", it.mnem)
}

func sectionPC(sec section, textPC, dataPC uint32) uint32 {
	if sec == secData {
		return dataPC
	}
	return textPC
}

// parseInt parses a numeric literal, character literal or (when syms != nil)
// a label, with an optional label+offset form.
func parseInt(s string, syms map[string]uint32, line int) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, errf(line, "empty operand")
	}
	if s[0] == '\'' {
		r, err := strconv.Unquote(s)
		if err != nil || len(r) != 1 {
			return 0, errf(line, "bad char literal %s", s)
		}
		return int64(r[0]), nil
	}
	if v, err := strconv.ParseInt(s, 0, 64); err == nil {
		return v, nil
	}
	if syms != nil {
		base, off := s, int64(0)
		if i := strings.LastIndexAny(s, "+-"); i > 0 {
			if v, err := strconv.ParseInt(s[i:], 0, 64); err == nil {
				base, off = s[:i], v
			}
		}
		if v, ok := syms[base]; ok {
			return int64(v) + off, nil
		}
	}
	return 0, errf(line, "cannot resolve operand %q", s)
}

var regAliases = func() map[string]uint8 {
	m := map[string]uint8{}
	for i := 0; i < 32; i++ {
		m[fmt.Sprintf("%d", i)] = uint8(i)
		m[isa.RegName(i)] = uint8(i)
	}
	m["r0"] = 0
	return m
}()

func parseReg(s string, line int) (uint8, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "$") {
		return 0, errf(line, "expected register, got %q", s)
	}
	r, ok := regAliases[strings.ToLower(s[1:])]
	if !ok {
		return 0, errf(line, "unknown register %q", s)
	}
	return r, nil
}

// parseMem parses "imm($reg)", "($reg)" or a bare label (base=at sentinel).
func parseMem(s string, line int) (off string, base string, bare bool, err error) {
	s = strings.TrimSpace(s)
	i := strings.Index(s, "(")
	if i < 0 {
		return s, "", true, nil // bare label/address: needs lui expansion
	}
	if !strings.HasSuffix(s, ")") {
		return "", "", false, errf(line, "bad memory operand %q", s)
	}
	off = strings.TrimSpace(s[:i])
	if off == "" {
		off = "0"
	}
	return off, strings.TrimSpace(s[i+1 : len(s)-1]), false, nil
}
