package asm

import (
	"strings"
	"testing"

	"selftune/internal/isa"
)

func TestAssembleBasic(t *testing.T) {
	p, err := Assemble(`
	.text
main:
	addi $t0, $zero, 5
	add  $t1, $t0, $t0
	jr   $ra
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Text) != 3 {
		t.Fatalf("text = %d words, want 3", len(p.Text))
	}
	if p.Entry != TextBase {
		t.Errorf("entry = %#x, want %#x", p.Entry, TextBase)
	}
	in := isa.Decode(p.Text[0])
	if in.Op != isa.OpAddi || in.Rt != isa.T0 || in.Rs != isa.Zero || in.SImm() != 5 {
		t.Errorf("addi encoded as %+v", in)
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p, err := Assemble(`
main:
	addi $t0, $zero, 10
loop:
	addi $t0, $t0, -1
	bne  $t0, $zero, loop
	jr   $ra
`)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Symbols["loop"]; got != TextBase+4 {
		t.Errorf("loop = %#x, want %#x", got, TextBase+4)
	}
	// bne at TextBase+8 targets loop (TextBase+4): offset = -2 words.
	in := isa.Decode(p.Text[2])
	if in.Op != isa.OpBne || in.SImm() != -2 {
		t.Errorf("bne = %+v, want offset -2", in)
	}
}

func TestPseudoExpansion(t *testing.T) {
	p, err := Assemble(`
main:
	li   $t0, 0x12345678
	la   $t1, buf
	move $t2, $t0
	nop
	mul  $t3, $t0, $t2
	blt  $t0, $t2, main
	jr   $ra
	.data
buf: .space 16
`)
	if err != nil {
		t.Fatal(err)
	}
	// li=2, la=2, move=1, nop=1, mul=2, blt=2, jr=1 -> 11 words.
	if len(p.Text) != 11 {
		t.Fatalf("text = %d words, want 11", len(p.Text))
	}
	// li: lui+ori producing the constant.
	lui, ori := isa.Decode(p.Text[0]), isa.Decode(p.Text[1])
	if lui.Op != isa.OpLui || lui.Imm != 0x1234 || ori.Op != isa.OpOri || ori.Imm != 0x5678 {
		t.Errorf("li expansion wrong: %+v %+v", lui, ori)
	}
	if got := p.Symbols["buf"]; got != DataBase {
		t.Errorf("buf = %#x, want %#x", got, DataBase)
	}
}

func TestDataDirectives(t *testing.T) {
	p, err := Assemble(`
	.data
a:	.word 1, 2, 3
b:	.half 0x1234
	.byte 7
	.align 2
c:	.asciiz "hi"
	.space 3
	.text
main:	jr $ra
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Symbols["a"] != DataBase || p.Symbols["b"] != DataBase+12 {
		t.Errorf("symbols wrong: a=%#x b=%#x", p.Symbols["a"], p.Symbols["b"])
	}
	// b(2) + byte(1) + align to 16 -> c at DataBase+16.
	if got := p.Symbols["c"]; got != DataBase+16 {
		t.Errorf("c = %#x, want %#x", got, DataBase+16)
	}
	if len(p.Data) != 16+3+3 {
		t.Errorf("data = %d bytes, want 22", len(p.Data))
	}
	if p.Data[0] != 1 || p.Data[4] != 2 || p.Data[8] != 3 {
		t.Errorf("little-endian .word wrong: % x", p.Data[:12])
	}
	if string(p.Data[16:18]) != "hi" || p.Data[18] != 0 {
		t.Errorf("asciiz wrong: % x", p.Data[16:19])
	}
}

func TestWordWithLabelReference(t *testing.T) {
	p, err := Assemble(`
	.data
table: .word table, next
next:  .word 0
	.text
main:  jr $ra
`)
	if err != nil {
		t.Fatal(err)
	}
	got := uint32(p.Data[0]) | uint32(p.Data[1])<<8 | uint32(p.Data[2])<<16 | uint32(p.Data[3])<<24
	if got != DataBase {
		t.Errorf("table[0] = %#x, want %#x", got, DataBase)
	}
}

func TestMemOperandForms(t *testing.T) {
	p, err := Assemble(`
	.data
v:	.word 42
	.text
main:
	lw $t0, v        # bare label -> lui $at + lw
	lw $t1, 0($sp)
	lw $t2, -8($sp)
	sw $t0, 4($sp)
	jr $ra
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Text) != 6 {
		t.Fatalf("text = %d words, want 6", len(p.Text))
	}
	in := isa.Decode(p.Text[3]) // lw $t2, -8($sp)
	if in.Op != isa.OpLw || in.SImm() != -8 || in.Rs != isa.SP {
		t.Errorf("negative offset wrong: %+v", in)
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		"bogus $t0, $t1",
		"add $t0, $t1",                 // arity
		"addi $t0, $t1, 100000",        // immediate range
		"lw $t0, 40000($sp)",           // offset range
		"beq $t0, $t1, nowhere",        // unresolved label
		"x: add $t0, $t1, $t2\nx: nop", // duplicate label
		".data\n.word nolabel",
		"add $t9, $t1, $99",
		".align",
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

func TestErrorsIncludeLineNumbers(t *testing.T) {
	_, err := Assemble("nop\nnop\nbogus $t0\n")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %v does not name line 3", err)
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	p, err := Assemble(`
# full-line comment
main:	nop   # trailing comment
	.data
s: .asciiz "has # hash"  # comment after string
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Text) != 1 {
		t.Errorf("text = %d words, want 1", len(p.Text))
	}
	if !strings.Contains(string(p.Data), "has # hash") {
		t.Errorf("hash inside string mangled: %q", p.Data)
	}
}

func TestDisassembleRoundTripMnemonic(t *testing.T) {
	p := MustAssemble(`
main:
	addiu $sp, $sp, -16
	sw    $ra, 12($sp)
	jal   main
	lw    $ra, 12($sp)
	sltu  $v0, $a0, $a1
	jr    $ra
`)
	dis := p.Disassemble()
	for _, want := range []string{"addiu", "sw", "jal", "lw", "sltu", "jr"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestProgramSize(t *testing.T) {
	p := MustAssemble("main: nop\n.data\n.space 10")
	if p.Size() != 14 {
		t.Errorf("Size = %d, want 14", p.Size())
	}
}
