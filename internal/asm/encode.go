package asm

import (
	"strings"

	"selftune/internal/isa"
)

// instWords returns how many machine words an instruction (or pseudo)
// occupies; it must agree exactly with encodeInst so pass 1 layout is right.
func instWords(it item) (int, error) {
	switch it.mnem {
	case "li", "la", "blt", "bgt", "ble", "bge", "mul", "rem", "divq":
		return 2, nil
	case "lw", "lh", "lhu", "lb", "lbu", "sw", "sh", "sb":
		if len(it.args) == 2 {
			_, _, bare, err := parseMem(it.args[1], it.line)
			if err != nil {
				return 0, err
			}
			if bare {
				return 2, nil
			}
		}
		return 1, nil
	default:
		if _, ok := instTable[it.mnem]; !ok && !isPseudo(it.mnem) {
			return 0, errf(it.line, "unknown instruction %q", it.mnem)
		}
		return 1, nil
	}
}

func isPseudo(m string) bool {
	switch m {
	case "nop", "move", "b", "beqz", "bnez", "neg", "not", "li", "la",
		"blt", "bgt", "ble", "bge", "mul", "rem", "divq":
		return true
	}
	return false
}

type instKind int

const (
	kindR3       instKind = iota // op rd, rs, rt
	kindShiftI                   // op rd, rt, shamt
	kindShiftV                   // op rd, rt, rs
	kindArithI                   // op rt, rs, imm
	kindBranch2                  // op rs, rt, label
	kindBranch1                  // op rs, label (blez/bgtz/bltz/bgez)
	kindMem                      // op rt, off(rs)
	kindJump                     // op label
	kindMulDiv                   // op rs, rt
	kindMoveHiLo                 // op rd
	kindJr                       // op rs
	kindJalr                     // op [rd,] rs
	kindLui                      // lui rt, imm
	kindSyscall
)

type instDef struct {
	kind  instKind
	op    uint8
	funct uint8
	rtSel uint8 // for REGIMM branches
}

var instTable = map[string]instDef{
	"add":  {kindR3, isa.OpSpecial, isa.FnAdd, 0},
	"addu": {kindR3, isa.OpSpecial, isa.FnAddu, 0},
	"sub":  {kindR3, isa.OpSpecial, isa.FnSub, 0},
	"subu": {kindR3, isa.OpSpecial, isa.FnSubu, 0},
	"and":  {kindR3, isa.OpSpecial, isa.FnAnd, 0},
	"or":   {kindR3, isa.OpSpecial, isa.FnOr, 0},
	"xor":  {kindR3, isa.OpSpecial, isa.FnXor, 0},
	"nor":  {kindR3, isa.OpSpecial, isa.FnNor, 0},
	"slt":  {kindR3, isa.OpSpecial, isa.FnSlt, 0},
	"sltu": {kindR3, isa.OpSpecial, isa.FnSltu, 0},

	"sll": {kindShiftI, isa.OpSpecial, isa.FnSll, 0},
	"srl": {kindShiftI, isa.OpSpecial, isa.FnSrl, 0},
	"sra": {kindShiftI, isa.OpSpecial, isa.FnSra, 0},

	"sllv": {kindShiftV, isa.OpSpecial, isa.FnSllv, 0},
	"srlv": {kindShiftV, isa.OpSpecial, isa.FnSrlv, 0},
	"srav": {kindShiftV, isa.OpSpecial, isa.FnSrav, 0},

	"addi":  {kindArithI, isa.OpAddi, 0, 0},
	"addiu": {kindArithI, isa.OpAddiu, 0, 0},
	"slti":  {kindArithI, isa.OpSlti, 0, 0},
	"sltiu": {kindArithI, isa.OpSltiu, 0, 0},
	"andi":  {kindArithI, isa.OpAndi, 0, 0},
	"ori":   {kindArithI, isa.OpOri, 0, 0},
	"xori":  {kindArithI, isa.OpXori, 0, 0},

	"beq":  {kindBranch2, isa.OpBeq, 0, 0},
	"bne":  {kindBranch2, isa.OpBne, 0, 0},
	"blez": {kindBranch1, isa.OpBlez, 0, 0},
	"bgtz": {kindBranch1, isa.OpBgtz, 0, 0},
	"bltz": {kindBranch1, isa.OpRegimm, 0, isa.RtBltz},
	"bgez": {kindBranch1, isa.OpRegimm, 0, isa.RtBgez},

	"lb":  {kindMem, isa.OpLb, 0, 0},
	"lh":  {kindMem, isa.OpLh, 0, 0},
	"lw":  {kindMem, isa.OpLw, 0, 0},
	"lbu": {kindMem, isa.OpLbu, 0, 0},
	"lhu": {kindMem, isa.OpLhu, 0, 0},
	"sb":  {kindMem, isa.OpSb, 0, 0},
	"sh":  {kindMem, isa.OpSh, 0, 0},
	"sw":  {kindMem, isa.OpSw, 0, 0},

	"j":   {kindJump, isa.OpJ, 0, 0},
	"jal": {kindJump, isa.OpJal, 0, 0},

	"mult":  {kindMulDiv, isa.OpSpecial, isa.FnMult, 0},
	"multu": {kindMulDiv, isa.OpSpecial, isa.FnMultu, 0},
	"div":   {kindMulDiv, isa.OpSpecial, isa.FnDiv, 0},
	"divu":  {kindMulDiv, isa.OpSpecial, isa.FnDivu, 0},

	"mfhi": {kindMoveHiLo, isa.OpSpecial, isa.FnMfhi, 0},
	"mflo": {kindMoveHiLo, isa.OpSpecial, isa.FnMflo, 0},

	"jr":      {kindJr, isa.OpSpecial, isa.FnJr, 0},
	"jalr":    {kindJalr, isa.OpSpecial, isa.FnJalr, 0},
	"lui":     {kindLui, isa.OpLui, 0, 0},
	"syscall": {kindSyscall, isa.OpSpecial, isa.FnSyscall, 0},
}

// encodeInst emits the machine words for one (possibly pseudo) instruction
// located at pc.
func encodeInst(it item, pc uint32, syms map[string]uint32) ([]uint32, error) {
	need := func(n int) error {
		if len(it.args) != n {
			return errf(it.line, "%s needs %d operands, got %d (%q)", it.mnem, n, len(it.args), it.rawLine)
		}
		return nil
	}
	reg := func(i int) (uint8, error) { return parseReg(it.args[i], it.line) }

	// Pseudo-instructions expand first.
	switch it.mnem {
	case "nop":
		return []uint32{0}, nil
	case "move":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		if err != nil {
			return nil, err
		}
		return []uint32{isa.R(isa.FnAddu, rd, rs, isa.Zero, 0).Encode()}, nil
	case "neg":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		if err != nil {
			return nil, err
		}
		return []uint32{isa.R(isa.FnSubu, rd, isa.Zero, rs, 0).Encode()}, nil
	case "not":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		if err != nil {
			return nil, err
		}
		return []uint32{isa.R(isa.FnNor, rd, rs, isa.Zero, 0).Encode()}, nil
	case "li", "la":
		if err := need(2); err != nil {
			return nil, err
		}
		rt, err := reg(0)
		if err != nil {
			return nil, err
		}
		v, err := parseInt(it.args[1], syms, it.line)
		if err != nil {
			return nil, err
		}
		u := uint32(v)
		return []uint32{
			isa.I(isa.OpLui, rt, 0, uint16(u>>16)).Encode(),
			isa.I(isa.OpOri, rt, rt, uint16(u)).Encode(),
		}, nil
	case "b":
		if err := need(1); err != nil {
			return nil, err
		}
		off, err := branchOffset(it.args[0], pc, syms, it.line)
		if err != nil {
			return nil, err
		}
		return []uint32{isa.I(isa.OpBeq, isa.Zero, isa.Zero, off).Encode()}, nil
	case "beqz", "bnez":
		if err := need(2); err != nil {
			return nil, err
		}
		rs, err := reg(0)
		if err != nil {
			return nil, err
		}
		off, err := branchOffset(it.args[1], pc, syms, it.line)
		if err != nil {
			return nil, err
		}
		op := uint8(isa.OpBeq)
		if it.mnem == "bnez" {
			op = isa.OpBne
		}
		return []uint32{isa.I(op, isa.Zero, rs, off).Encode()}, nil
	case "blt", "bgt", "ble", "bge":
		if err := need(3); err != nil {
			return nil, err
		}
		rs, err := reg(0)
		if err != nil {
			return nil, err
		}
		rt, err := reg(1)
		if err != nil {
			return nil, err
		}
		// slt occupies pc, the branch pc+4.
		off, err := branchOffset(it.args[2], pc+4, syms, it.line)
		if err != nil {
			return nil, err
		}
		var slt uint32
		var brOp uint8
		switch it.mnem {
		case "blt": // rs < rt
			slt, brOp = isa.R(isa.FnSlt, isa.AT, rs, rt, 0).Encode(), isa.OpBne
		case "bge": // !(rs < rt)
			slt, brOp = isa.R(isa.FnSlt, isa.AT, rs, rt, 0).Encode(), isa.OpBeq
		case "bgt": // rt < rs
			slt, brOp = isa.R(isa.FnSlt, isa.AT, rt, rs, 0).Encode(), isa.OpBne
		default: // ble: !(rt < rs)
			slt, brOp = isa.R(isa.FnSlt, isa.AT, rt, rs, 0).Encode(), isa.OpBeq
		}
		return []uint32{slt, isa.I(brOp, isa.Zero, isa.AT, off).Encode()}, nil
	case "mul", "rem", "divq":
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		if err != nil {
			return nil, err
		}
		rt, err := reg(2)
		if err != nil {
			return nil, err
		}
		switch it.mnem {
		case "mul":
			return []uint32{
				isa.R(isa.FnMult, 0, rs, rt, 0).Encode(),
				isa.R(isa.FnMflo, rd, 0, 0, 0).Encode(),
			}, nil
		case "divq": // quotient
			return []uint32{
				isa.R(isa.FnDiv, 0, rs, rt, 0).Encode(),
				isa.R(isa.FnMflo, rd, 0, 0, 0).Encode(),
			}, nil
		default: // rem: remainder
			return []uint32{
				isa.R(isa.FnDiv, 0, rs, rt, 0).Encode(),
				isa.R(isa.FnMfhi, rd, 0, 0, 0).Encode(),
			}, nil
		}
	}

	def, ok := instTable[it.mnem]
	if !ok {
		return nil, errf(it.line, "unknown instruction %q", it.mnem)
	}
	switch def.kind {
	case kindR3:
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		if err != nil {
			return nil, err
		}
		rt, err := reg(2)
		if err != nil {
			return nil, err
		}
		return []uint32{isa.R(def.funct, rd, rs, rt, 0).Encode()}, nil
	case kindShiftI:
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rt, err := reg(1)
		if err != nil {
			return nil, err
		}
		sh, err := parseInt(it.args[2], syms, it.line)
		if err != nil {
			return nil, err
		}
		if sh < 0 || sh > 31 {
			return nil, errf(it.line, "shift amount %d out of range", sh)
		}
		return []uint32{isa.R(def.funct, rd, 0, rt, uint8(sh)).Encode()}, nil
	case kindShiftV:
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rt, err := reg(1)
		if err != nil {
			return nil, err
		}
		rs, err := reg(2)
		if err != nil {
			return nil, err
		}
		return []uint32{isa.R(def.funct, rd, rs, rt, 0).Encode()}, nil
	case kindArithI:
		if err := need(3); err != nil {
			return nil, err
		}
		rt, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		if err != nil {
			return nil, err
		}
		v, err := parseInt(it.args[2], syms, it.line)
		if err != nil {
			return nil, err
		}
		if v < -32768 || v > 65535 {
			return nil, errf(it.line, "immediate %d out of 16-bit range", v)
		}
		return []uint32{isa.I(def.op, rt, rs, uint16(v)).Encode()}, nil
	case kindBranch2:
		if err := need(3); err != nil {
			return nil, err
		}
		rs, err := reg(0)
		if err != nil {
			return nil, err
		}
		rt, err := reg(1)
		if err != nil {
			return nil, err
		}
		off, err := branchOffset(it.args[2], pc, syms, it.line)
		if err != nil {
			return nil, err
		}
		return []uint32{isa.I(def.op, rt, rs, off).Encode()}, nil
	case kindBranch1:
		if err := need(2); err != nil {
			return nil, err
		}
		rs, err := reg(0)
		if err != nil {
			return nil, err
		}
		off, err := branchOffset(it.args[1], pc, syms, it.line)
		if err != nil {
			return nil, err
		}
		rt := def.rtSel
		if def.op != isa.OpRegimm {
			rt = 0
		}
		return []uint32{isa.I(def.op, rt, rs, off).Encode()}, nil
	case kindMem:
		if err := need(2); err != nil {
			return nil, err
		}
		rt, err := reg(0)
		if err != nil {
			return nil, err
		}
		offStr, baseStr, bare, err := parseMem(it.args[1], it.line)
		if err != nil {
			return nil, err
		}
		if bare {
			addr, err := parseInt(offStr, syms, it.line)
			if err != nil {
				return nil, err
			}
			u := uint32(addr)
			hi := uint16((u + 0x8000) >> 16)
			lo := uint16(u)
			return []uint32{
				isa.I(isa.OpLui, isa.AT, 0, hi).Encode(),
				isa.I(def.op, rt, isa.AT, lo).Encode(),
			}, nil
		}
		base, err := parseReg(baseStr, it.line)
		if err != nil {
			return nil, err
		}
		off, err := parseInt(offStr, syms, it.line)
		if err != nil {
			return nil, err
		}
		if off < -32768 || off > 32767 {
			return nil, errf(it.line, "offset %d out of range", off)
		}
		return []uint32{isa.I(def.op, rt, base, uint16(off)).Encode()}, nil
	case kindJump:
		if err := need(1); err != nil {
			return nil, err
		}
		addr, err := parseInt(it.args[0], syms, it.line)
		if err != nil {
			return nil, err
		}
		return []uint32{isa.J(def.op, uint32(addr)).Encode()}, nil
	case kindMulDiv:
		if err := need(2); err != nil {
			return nil, err
		}
		rs, err := reg(0)
		if err != nil {
			return nil, err
		}
		rt, err := reg(1)
		if err != nil {
			return nil, err
		}
		return []uint32{isa.R(def.funct, 0, rs, rt, 0).Encode()}, nil
	case kindMoveHiLo:
		if err := need(1); err != nil {
			return nil, err
		}
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		return []uint32{isa.R(def.funct, rd, 0, 0, 0).Encode()}, nil
	case kindJr:
		if err := need(1); err != nil {
			return nil, err
		}
		rs, err := reg(0)
		if err != nil {
			return nil, err
		}
		return []uint32{isa.R(def.funct, 0, rs, 0, 0).Encode()}, nil
	case kindJalr:
		rdIdx, rsIdx := 0, 1
		if len(it.args) == 1 {
			rdIdx = -1
			rsIdx = 0
		} else if err := need(2); err != nil {
			return nil, err
		}
		rd := uint8(isa.RA)
		if rdIdx >= 0 {
			var err error
			rd, err = reg(rdIdx)
			if err != nil {
				return nil, err
			}
		}
		rs, err := reg(rsIdx)
		if err != nil {
			return nil, err
		}
		return []uint32{isa.R(def.funct, rd, rs, 0, 0).Encode()}, nil
	case kindLui:
		if err := need(2); err != nil {
			return nil, err
		}
		rt, err := reg(0)
		if err != nil {
			return nil, err
		}
		v, err := parseInt(it.args[1], syms, it.line)
		if err != nil {
			return nil, err
		}
		return []uint32{isa.I(isa.OpLui, rt, 0, uint16(v)).Encode()}, nil
	case kindSyscall:
		return []uint32{isa.R(isa.FnSyscall, 0, 0, 0, 0).Encode()}, nil
	}
	return nil, errf(it.line, "unhandled instruction %q", it.mnem)
}

// branchOffset computes the signed word offset from the instruction at pc to
// a label (or absolute address), as stored in the immediate field.
func branchOffset(arg string, pc uint32, syms map[string]uint32, line int) (uint16, error) {
	target, err := parseInt(arg, syms, line)
	if err != nil {
		return 0, err
	}
	delta := target - int64(pc) - 4
	if delta%4 != 0 {
		return 0, errf(line, "branch target %q not word aligned", arg)
	}
	words := delta / 4
	if words < -32768 || words > 32767 {
		return 0, errf(line, "branch to %q out of range (%d words)", arg, words)
	}
	return uint16(words), nil
}

// MustAssemble panics on assembly errors; for embedding programs in tests
// and examples.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

// Size returns total image bytes (text + data).
func (p *Program) Size() int { return 4*len(p.Text) + len(p.Data) }

// Disassemble renders the text section.
func (p *Program) Disassemble() string {
	var b strings.Builder
	for i, w := range p.Text {
		pc := p.TextBase + uint32(4*i)
		fmtSym := ""
		for name, addr := range p.Symbols {
			if addr == pc {
				fmtSym = name + ":\n"
				break
			}
		}
		b.WriteString(fmtSym)
		b.WriteString("  ")
		b.WriteString(isa.Disassemble(w, pc))
		b.WriteByte('\n')
	}
	return b.String()
}
