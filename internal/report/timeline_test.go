package report

import (
	"bytes"
	"log/slog"
	"testing"

	"selftune/internal/obs"
)

// spanLog scripts a session's span events through the real recorder path:
// two searches (the second twice the first's work), a nested persist, a
// kill/resume re-emission of the first pair, and an unclosed drain.
func spanLog(t *testing.T) []obs.RawEvent {
	t.Helper()
	var buf bytes.Buffer
	rec := obs.NewJSONL(&buf)

	search := obs.BeginSpan(rec, nil, obs.Event{Name: "tuner.search", Session: 0, Window: 0,
		Fields: []slog.Attr{slog.Int("budget_bytes", 0)}})
	persist := obs.BeginSpan(rec, nil, obs.Event{Name: "daemon.persist", Session: 0, Window: 1, Step: 1000, Config: "cfg-a"})
	persist.End(slog.Uint64("work", 2), slog.String("unit", "boundaries"))
	search.End(slog.Uint64("work", 7), slog.String("unit", "configs"))

	// Kill/resume re-executes the window: the identical span pair re-emits
	// and must collapse into the one node above.
	again := obs.BeginSpan(rec, nil, obs.Event{Name: "tuner.search", Session: 0, Window: 0,
		Fields: []slog.Attr{slog.Int("budget_bytes", 0)}})
	again.End(slog.Uint64("work", 7), slog.String("unit", "configs"))

	search2 := obs.BeginSpan(rec, nil, obs.Event{Name: "tuner.search", Session: 1, Window: 3,
		Fields: []slog.Attr{slog.Int("budget_bytes", 4096)}})
	search2.End(slog.Uint64("work", 14), slog.String("unit", "configs"))

	// A drain the crash interrupted: begin with no end.
	obs.BeginSpan(rec, nil, obs.Event{Name: "daemon.drain", Session: 1, Window: 4, Step: 9000, Config: "cfg-b"})

	evs, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return evs
}

func TestSpanTreeShape(t *testing.T) {
	roots := SpanTree(spanLog(t))
	if len(roots) != 3 {
		t.Fatalf("got %d roots, want 3 (re-emitted pair must collapse)", len(roots))
	}
	s0 := roots[0]
	if s0.Name != "tuner.search" || !s0.Closed || s0.Work != 7 || s0.Unit != "configs" {
		t.Fatalf("first search: %+v", s0)
	}
	if len(s0.Children) != 1 || s0.Children[0].Name != "daemon.persist" {
		t.Fatalf("persist not nested under the first search: %+v", s0.Children)
	}
	if c := s0.Children[0]; c.Work != 2 || c.Unit != "boundaries" || c.Window != 1 || c.Step != 1000 {
		t.Fatalf("persist node: %+v", c)
	}
	if s2 := roots[1]; s2.Work != 14 || s2.Session != 1 {
		t.Fatalf("second search: %+v", s2)
	}
	if drain := roots[2]; drain.Closed || drain.Name != "daemon.drain" {
		t.Fatalf("unclosed drain: %+v", drain)
	}
}

// TestTimelineGolden pins the rendered timeline byte for byte: the widths
// are work units (per unit kind), so the output is deterministic across
// runs and platforms.
func TestTimelineGolden(t *testing.T) {
	got := Timeline(spanLog(t))
	want := "" +
		"span timeline (bar widths are deterministic work units, not wall-clock)\n" +
		"tuner.search s0 w0      |###############               | 7 configs\n" +
		"  daemon.persist s0 w1  |##############################| 2 boundaries\n" +
		"tuner.search s1 w3      |##############################| 14 configs\n" +
		"daemon.drain s1 w4      [ unclosed ]\n"
	if got != want {
		t.Errorf("timeline diverged:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestTimelineEmptyWithoutSpans(t *testing.T) {
	evs := []obs.RawEvent{{Name: "tuner.step", Fields: map[string]any{}}}
	if out := Timeline(evs); out != "" {
		t.Fatalf("timeline from a span-free log: %q", out)
	}
}
