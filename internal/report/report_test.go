package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("Ben.", "cfg", "E%")
	tb.Add("crc", "2K_1W_32B", "97%")
	tb.Add("padpcm", "8K_1W_64B", "23%")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want header+sep+2 rows", len(lines))
	}
	if !strings.HasPrefix(lines[0], "Ben.") || !strings.Contains(lines[1], "---") {
		t.Errorf("header/separator malformed:\n%s", out)
	}
	// Columns align: "cfg" column starts at the same offset everywhere.
	idx := strings.Index(lines[0], "cfg")
	for _, l := range lines[2:] {
		if !strings.Contains(l[idx:], "K_") {
			t.Errorf("misaligned row %q", l)
		}
	}
}

func TestTableAddfAndShortRows(t *testing.T) {
	tb := NewTable("a", "b", "c")
	tb.Addf("x", 1.5, 7)
	tb.Add("only-one")
	if tb.Rows[0][1] != "1.50" || tb.Rows[0][2] != "7" {
		t.Errorf("Addf row = %v", tb.Rows[0])
	}
	if tb.Rows[1][1] != "" {
		t.Errorf("short row not padded: %v", tb.Rows[1])
	}
}

func TestWriteCSV(t *testing.T) {
	tb := NewTable("x", "y")
	tb.Add("1", "2")
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "x,y\n1,2\n" {
		t.Errorf("CSV = %q", got)
	}
}

func TestSeriesAndPct(t *testing.T) {
	s := Series("Cache", []string{"1K", "2K"}, []float64{0.5, 1.25})
	if !strings.Contains(s, "1K=0.5") || !strings.Contains(s, "2K=1.25") {
		t.Errorf("Series = %q", s)
	}
	if Pct(0.4567) != "45.7%" {
		t.Errorf("Pct = %q", Pct(0.4567))
	}
}
