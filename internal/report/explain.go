package report

import (
	"fmt"
	"sort"
	"strings"

	"selftune/internal/obs"
)

// This file turns a flight-recorder event log back into the story the paper
// tells in Figure 6: which configurations each tuning session examined, in
// what order, what each one measured, and why the sweep kept going or
// stopped. Because events are keyed by deterministic coordinates
// (session, window, step, config) rather than wall-clock, the log of a
// killed-and-resumed daemon contains duplicate events for re-executed
// windows; Explain deduplicates by coordinates first, so the reassembled
// trajectory is identical to an uninterrupted run's.

// StoryStep is one heuristic decision reassembled from a "tuner.step" event.
type StoryStep struct {
	Step       int
	Window     uint64
	Phase      string
	Config     string
	Energy     float64
	Improved   bool
	Stop       bool
	Remeasured bool
}

// SessionStory is one tuning session's trajectory.
type SessionStory struct {
	Session uint64
	Steps   []StoryStep
	// Settled reports the log contains the session's "tuner.settle";
	// Best/BestEnergy/Examined/Degraded come from it.
	Settled    bool
	Best       string
	BestEnergy float64
	Examined   int
	Degraded   bool
	// Budget is the capacity assignment (bytes) in force when the session's
	// search began, 0 when the log records no constraint; BudgetExcluded is
	// how many of the 27 configurations the budget removed from its space.
	// Constrained re-searches are ordinary sessions, so MaxExamined counts
	// them like any other.
	Budget         int
	BudgetExcluded int
}

// Story is a full event log explained: the per-session search trajectories
// plus the daemon's lifecycle narration, in stream order.
type Story struct {
	Sessions []SessionStory
	// Notes narrate daemon-level events (recoveries, drift detections,
	// re-tunes, watchdog aborts) keyed by access position.
	Notes []string
	// Checkpoints and Recoveries count persistence lifecycle events.
	Checkpoints, Recoveries int
	// Duplicates counts events discarded by coordinate deduplication —
	// nonzero exactly when the daemon was killed and resumed mid-window.
	Duplicates int
}

// MaxExamined is the largest per-session examined count, 0 for an empty log.
func (s *Story) MaxExamined() int {
	max := 0
	for _, ss := range s.Sessions {
		n := ss.Examined
		if !ss.Settled {
			n = len(ss.Steps)
		}
		if n > max {
			max = n
		}
	}
	return max
}

// Steps counts trajectory steps across all sessions.
func (s *Story) Steps() int {
	n := 0
	for _, ss := range s.Sessions {
		n += len(ss.Steps)
	}
	return n
}

// Explain reassembles a Story from raw events. Events with unknown names are
// ignored, so logs may interleave telemetry from other subsystems.
func Explain(evs []obs.RawEvent) *Story {
	st := &Story{}
	sessions := map[uint64]*SessionStory{}
	order := []uint64{}
	// The budget in force, tracked in stream order: a "daemon.budget" event
	// constrains every session that begins after it. A budget set at
	// construction (daemon.Options.BudgetBytes) emits no event, so the first
	// session reads as unconstrained unless the log says otherwise.
	curBudget, curExcluded := 0, 0
	get := func(id uint64) *SessionStory {
		ss, ok := sessions[id]
		if !ok {
			ss = &SessionStory{Session: id, Budget: curBudget, BudgetExcluded: curExcluded}
			sessions[id] = ss
			order = append(order, id)
		}
		return ss
	}
	seen := map[string]bool{}
	for _, e := range evs {
		key := fmt.Sprintf("%s/%d/%d/%d/%s", e.Name, e.Session, e.Window, e.Step, e.Config)
		if e.Name == "fleet.realloc" {
			// Fleet events carry no tuner coordinates; the allocation pair
			// is what distinguishes one reallocation from a replayed copy.
			key = fmt.Sprintf("%s/%s/%.0f/%.0f", e.Name, e.Str("sid"),
				e.Float("budget_bytes"), e.Float("prev_bytes"))
		}
		if seen[key] {
			st.Duplicates++
			continue
		}
		seen[key] = true
		switch e.Name {
		case "tuner.step":
			get(e.Session).Steps = append(get(e.Session).Steps, StoryStep{
				Step:       int(e.Step),
				Window:     e.Window,
				Phase:      e.Str("phase"),
				Config:     e.Config,
				Energy:     e.Float("energy"),
				Improved:   e.Bool("improved"),
				Stop:       e.Bool("stop"),
				Remeasured: e.Bool("remeasured"),
			})
		case "tuner.settle":
			ss := get(e.Session)
			ss.Settled = true
			ss.Best = e.Config
			ss.BestEnergy = e.Float("energy")
			ss.Examined = int(e.Float("examined"))
			ss.Degraded = e.Bool("degraded")
		case "daemon.drift":
			st.Notes = append(st.Notes, fmt.Sprintf(
				"access %.0f: miss rate %.4f drifted %.4f from baseline %.4f (threshold %.4f) on %s",
				e.Float("at"), e.Float("miss_rate"), e.Float("drift"),
				e.Float("baseline_rate"), e.Float("threshold"), e.Config))
		case "daemon.retune":
			if e.Str("reason") == "budget" {
				st.Notes = append(st.Notes, fmt.Sprintf(
					"access %.0f: re-tuning from %s within the %.0f B budget (session %d begins)",
					e.Float("at"), e.Config, e.Float("budget_bytes"), e.Session))
			} else {
				st.Notes = append(st.Notes, fmt.Sprintf(
					"access %.0f: re-tuning from %s (session %d begins)",
					e.Float("at"), e.Config, e.Session))
			}
		case "daemon.budget":
			curBudget = int(e.Float("budget_bytes"))
			curExcluded = int(e.Float("excluded"))
			st.Notes = append(st.Notes, fmt.Sprintf(
				"access %.0f: budget set to %.0f B (was %.0f B; %.0f of 27 configurations excluded)",
				e.Float("at"), e.Float("budget_bytes"), e.Float("prev_bytes"), e.Float("excluded")))
		case "fleet.realloc":
			st.Notes = append(st.Notes, fmt.Sprintf(
				"fleet reallocation: budget %.0f B (was %.0f B); a constrained re-tune follows",
				e.Float("budget_bytes"), e.Float("prev_bytes")))
		case "daemon.watchdog":
			st.Notes = append(st.Notes, fmt.Sprintf(
				"access %.0f: watchdog abort after %.0f windows; parked on %s",
				e.Float("at"), e.Float("session_windows"), e.Config))
		case "daemon.recover":
			st.Recoveries++
			st.Notes = append(st.Notes, fmt.Sprintf(
				"access %.0f: recovered from checkpoint generation %.0f (config %s)",
				e.Float("at"), e.Float("generation"), e.Config))
		case "daemon.checkpoint":
			st.Checkpoints++
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, id := range order {
		ss := sessions[id]
		sort.Slice(ss.Steps, func(i, j int) bool { return ss.Steps[i].Step < ss.Steps[j].Step })
		st.Sessions = append(st.Sessions, *ss)
	}
	return st
}

// String renders the story the way Figure 6 walks its example: one line per
// examined configuration with the decision that followed it.
func (s *Story) String() string {
	var b strings.Builder
	for _, ss := range s.Sessions {
		fmt.Fprintf(&b, "session %d", ss.Session)
		if ss.Budget > 0 {
			fmt.Fprintf(&b, " (budget %d B, %d configurations excluded)", ss.Budget, ss.BudgetExcluded)
		}
		if ss.Settled {
			status := "settled on"
			if ss.Degraded {
				status = "DEGRADED to"
			}
			fmt.Fprintf(&b, ": %s %s after examining %d configurations (%.2f nJ/window)\n",
				status, ss.Best, ss.Examined, ss.BestEnergy*1e9)
		} else {
			fmt.Fprintf(&b, ": still searching after %d measurements\n", len(ss.Steps))
		}
		tb := NewTable("step", "window", "phase", "config", "nJ/window", "decision")
		for _, st := range ss.Steps {
			dec := "start"
			switch {
			case st.Stop:
				dec = "stop: no improvement"
			case st.Phase != "initial" && st.Improved:
				dec = "keep: improved"
			case st.Phase != "initial":
				dec = "sweep exhausted"
			}
			if st.Remeasured {
				dec += " (re-measured)"
			}
			tb.Addf(st.Step, st.Window, st.Phase, st.Config, st.Energy*1e9, dec)
		}
		for _, line := range strings.Split(strings.TrimRight(tb.String(), "\n"), "\n") {
			fmt.Fprintf(&b, "  %s\n", line)
		}
	}
	for _, n := range s.Notes {
		fmt.Fprintf(&b, "%s\n", n)
	}
	if s.Checkpoints > 0 || s.Recoveries > 0 || s.Duplicates > 0 {
		fmt.Fprintf(&b, "%d checkpoints persisted, %d recoveries, %d duplicate events deduplicated\n",
			s.Checkpoints, s.Recoveries, s.Duplicates)
	}
	return b.String()
}
