package report

import (
	"bytes"
	"strings"
	"testing"

	"selftune/internal/cache"
	"selftune/internal/daemon"
	"selftune/internal/energy"
	"selftune/internal/obs"
	"selftune/internal/trace"
	"selftune/internal/tuner"
	"selftune/internal/workload"
)

// record drives one online tuning session and returns its telemetry log.
func record(t *testing.T) (*tuner.Online, []byte) {
	t.Helper()
	prof, ok := workload.ByName("jpeg")
	if !ok {
		t.Fatal("jpeg workload missing")
	}
	_, accs := trace.Split(trace.NewSliceSource(prof.Generate(400_000)))
	var log bytes.Buffer
	c := cache.MustConfigurable(cache.MinConfig())
	o := tuner.NewOnlineObserved(c, energy.DefaultParams(), 2_000, nil, obs.NewJSONL(&log), 0)
	defer o.Close()
	for _, a := range accs {
		o.Access(a.Addr, a.IsWrite())
		if o.Done() {
			break
		}
	}
	if !o.Done() {
		t.Fatal("session never settled")
	}
	return o, log.Bytes()
}

func TestExplainReassemblesTrajectory(t *testing.T) {
	o, log := record(t)
	evs, err := obs.ReadEvents(bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	story := Explain(evs)

	if len(story.Sessions) != 1 {
		t.Fatalf("story has %d sessions, want 1", len(story.Sessions))
	}
	ss := story.Sessions[0]
	if !ss.Settled || ss.Best != o.Result().Best.Cfg.String() {
		t.Fatalf("story settled=%v on %q, session settled on %v", ss.Settled, ss.Best, o.Result().Best.Cfg)
	}
	if ss.Examined != o.Result().NumExamined() || len(ss.Steps) < ss.Examined {
		t.Fatalf("story examined %d over %d steps, session examined %d",
			ss.Examined, len(ss.Steps), o.Result().NumExamined())
	}
	if got := story.MaxExamined(); got > 8 {
		t.Fatalf("MaxExamined = %d, the heuristic's structural maximum is 8", got)
	}
	if story.Steps() != len(ss.Steps) {
		t.Fatalf("Steps() = %d, session has %d", story.Steps(), len(ss.Steps))
	}
	if ss.Steps[0].Phase != "initial" {
		t.Fatalf("first step phase %q, want initial", ss.Steps[0].Phase)
	}

	out := story.String()
	for _, want := range []string{"session 0", ss.Best, "initial", "stop: no improvement"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered story lacks %q:\n%s", want, out)
		}
	}
}

// A log with every event recorded twice (the kill/resume shape) must explain
// to the identical story, with the duplicates counted.
func TestExplainDeduplicatesReplayedEvents(t *testing.T) {
	_, log := record(t)
	once, err := obs.ReadEvents(bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	twice, err := obs.ReadEvents(bytes.NewReader(append(append([]byte{}, log...), log...)))
	if err != nil {
		t.Fatal(err)
	}

	a, b := Explain(once), Explain(twice)
	if b.Duplicates != len(once) {
		t.Fatalf("Duplicates = %d, want %d", b.Duplicates, len(once))
	}
	b.Duplicates = a.Duplicates
	if a.String() != b.String() {
		t.Fatalf("duplicated log explains differently:\n%s\nvs\n%s", a.String(), b.String())
	}
}

// TestExplainBudgetConstrainedRetune drives a real daemon through a budget
// cut and asserts the story renders the constrained re-search: the budget
// note, the budget-reasoned re-tune note, the new session's header carrying
// its allocation, and MaxExamined counting the constrained session's search
// like any other (so -max-examined gates it too).
func TestExplainBudgetConstrainedRetune(t *testing.T) {
	var log bytes.Buffer
	d, err := daemon.New(daemon.Options{Window: 500, Rec: obs.NewJSONL(&log)})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Kill()
	// An 8 KiB-footprint strided pattern settles on the 8K tier
	// unconstrained, so a 2048 B budget binds and forces a re-search.
	feed := func(until uint64) {
		for d.Consumed() < until {
			i := d.Consumed()
			if err := d.Step(uint32(i*16%8192), i%7 == 0); err != nil {
				t.Fatalf("Step at %d: %v", i, err)
			}
		}
	}
	settle := func() {
		cap := d.Consumed() + 200_000
		for d.Tuning() && d.Consumed() < cap {
			feed(d.Consumed() + 1)
		}
		if d.Settled() == nil {
			t.Fatalf("no settle after %d accesses", d.Consumed())
		}
	}
	settle()
	d.SetBudget(2048)
	settle()

	evs, err := obs.ReadEvents(bytes.NewReader(log.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	story := Explain(evs)
	if len(story.Sessions) < 2 {
		t.Fatalf("story has %d sessions, want the original plus the constrained re-search", len(story.Sessions))
	}
	first, last := story.Sessions[0], story.Sessions[len(story.Sessions)-1]
	if first.Budget != 0 {
		t.Fatalf("pre-budget session carries budget %d", first.Budget)
	}
	if last.Budget != 2048 || last.BudgetExcluded <= 0 {
		t.Fatalf("constrained session = %+v, want budget 2048 with excluded configurations", last)
	}
	if !last.Settled || last.Examined == 0 {
		t.Fatalf("constrained session never settled: %+v", last)
	}
	if story.MaxExamined() < last.Examined {
		t.Fatalf("MaxExamined = %d does not count the constrained re-search's %d",
			story.MaxExamined(), last.Examined)
	}
	notes := strings.Join(story.Notes, "\n")
	for _, want := range []string{
		"budget set to 2048 B",
		"configurations excluded",
		"within the 2048 B budget",
	} {
		if !strings.Contains(notes, want) {
			t.Errorf("notes lack %q:\n%s", want, notes)
		}
	}
	out := story.String()
	if !strings.Contains(out, "(budget 2048 B") {
		t.Errorf("rendered story lacks the constrained session header:\n%s", out)
	}
}

// TestExplainFleetRealloc pins the fleet.realloc narration: a reallocation
// event (as left in a per-session log by obs.FilterSession) becomes a note
// naming both allocations, distinct reallocations are not deduplicated
// against each other, and a replayed copy of the same reallocation is.
func TestExplainFleetRealloc(t *testing.T) {
	realloc := func(budget, prev float64) obs.RawEvent {
		return obs.RawEvent{
			Name:   "fleet.realloc",
			Fields: map[string]any{"budget_bytes": budget, "prev_bytes": prev},
		}
	}
	story := Explain([]obs.RawEvent{
		realloc(4096, 8192),
		realloc(2048, 4096),
		realloc(4096, 8192), // kill/resume replay of the first
	})
	if len(story.Notes) != 2 || story.Duplicates != 1 {
		t.Fatalf("notes %v, duplicates %d; want 2 distinct reallocations and 1 duplicate",
			story.Notes, story.Duplicates)
	}
	if !strings.Contains(story.Notes[0], "budget 4096 B (was 8192 B)") {
		t.Fatalf("realloc note = %q", story.Notes[0])
	}
}

func TestExplainEmptyLog(t *testing.T) {
	story := Explain(nil)
	if story.Steps() != 0 || story.MaxExamined() != 0 || len(story.Sessions) != 0 {
		t.Fatalf("empty log explained to %+v", story)
	}
}
