package report

import (
	"bytes"
	"strings"
	"testing"

	"selftune/internal/cache"
	"selftune/internal/energy"
	"selftune/internal/obs"
	"selftune/internal/trace"
	"selftune/internal/tuner"
	"selftune/internal/workload"
)

// record drives one online tuning session and returns its telemetry log.
func record(t *testing.T) (*tuner.Online, []byte) {
	t.Helper()
	prof, ok := workload.ByName("jpeg")
	if !ok {
		t.Fatal("jpeg workload missing")
	}
	_, accs := trace.Split(trace.NewSliceSource(prof.Generate(400_000)))
	var log bytes.Buffer
	c := cache.MustConfigurable(cache.MinConfig())
	o := tuner.NewOnlineObserved(c, energy.DefaultParams(), 2_000, nil, obs.NewJSONL(&log), 0)
	defer o.Close()
	for _, a := range accs {
		o.Access(a.Addr, a.IsWrite())
		if o.Done() {
			break
		}
	}
	if !o.Done() {
		t.Fatal("session never settled")
	}
	return o, log.Bytes()
}

func TestExplainReassemblesTrajectory(t *testing.T) {
	o, log := record(t)
	evs, err := obs.ReadEvents(bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	story := Explain(evs)

	if len(story.Sessions) != 1 {
		t.Fatalf("story has %d sessions, want 1", len(story.Sessions))
	}
	ss := story.Sessions[0]
	if !ss.Settled || ss.Best != o.Result().Best.Cfg.String() {
		t.Fatalf("story settled=%v on %q, session settled on %v", ss.Settled, ss.Best, o.Result().Best.Cfg)
	}
	if ss.Examined != o.Result().NumExamined() || len(ss.Steps) < ss.Examined {
		t.Fatalf("story examined %d over %d steps, session examined %d",
			ss.Examined, len(ss.Steps), o.Result().NumExamined())
	}
	if got := story.MaxExamined(); got > 8 {
		t.Fatalf("MaxExamined = %d, the heuristic's structural maximum is 8", got)
	}
	if story.Steps() != len(ss.Steps) {
		t.Fatalf("Steps() = %d, session has %d", story.Steps(), len(ss.Steps))
	}
	if ss.Steps[0].Phase != "initial" {
		t.Fatalf("first step phase %q, want initial", ss.Steps[0].Phase)
	}

	out := story.String()
	for _, want := range []string{"session 0", ss.Best, "initial", "stop: no improvement"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered story lacks %q:\n%s", want, out)
		}
	}
}

// A log with every event recorded twice (the kill/resume shape) must explain
// to the identical story, with the duplicates counted.
func TestExplainDeduplicatesReplayedEvents(t *testing.T) {
	_, log := record(t)
	once, err := obs.ReadEvents(bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	twice, err := obs.ReadEvents(bytes.NewReader(append(append([]byte{}, log...), log...)))
	if err != nil {
		t.Fatal(err)
	}

	a, b := Explain(once), Explain(twice)
	if b.Duplicates != len(once) {
		t.Fatalf("Duplicates = %d, want %d", b.Duplicates, len(once))
	}
	b.Duplicates = a.Duplicates
	if a.String() != b.String() {
		t.Fatalf("duplicated log explains differently:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestExplainEmptyLog(t *testing.T) {
	story := Explain(nil)
	if story.Steps() != 0 || story.MaxExamined() != 0 || len(story.Sessions) != 0 {
		t.Fatalf("empty log explained to %+v", story)
	}
}
