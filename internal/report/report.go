// Package report formats the tables and figure series the cmd tools and the
// bench harness print when regenerating the paper's results.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a fixed-width text table.
type Table struct {
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table { return &Table{Headers: headers} }

// Add appends a row; cells beyond the header count are dropped, missing
// cells are blank.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// Addf appends a row of formatted values.
func (t *Table) Addf(cells ...any) {
	s := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			s[i] = v
		case float64:
			s[i] = fmt.Sprintf("%.2f", v)
		default:
			s[i] = fmt.Sprint(v)
		}
	}
	t.Add(s...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	seps := make([]string, len(t.Headers))
	for i, w := range widths {
		seps[i] = strings.Repeat("-", w)
	}
	line(seps)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// WriteCSV writes the table as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Series renders one named figure series as "name: x=y x=y ..." — the plain
// text stand-in for a plotted curve.
func Series(name string, xs []string, ys []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s", name)
	for i := range xs {
		fmt.Fprintf(&b, " %s=%.4g", xs[i], ys[i])
	}
	return b.String()
}

// Pct formats a ratio as a percentage.
func Pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
