package report

import (
	"fmt"
	"strings"

	"selftune/internal/obs"
)

// SpanNode is one reconstructed span: a ".begin"/".end" event pair joined by
// the span id, nested under the span that was open when it began. Work and
// Unit come from the end event's deterministic work-unit payload — a span
// tree rendered from two runs of the same stream is identical, because
// nothing here ever saw a clock.
type SpanNode struct {
	// Name is the span name with the ".begin"/".end" suffix stripped.
	Name string
	// Session, Window, Step and Config are the begin event's deterministic
	// coordinates.
	Session, Window, Step uint64
	Config                string
	// Work and Unit are the end event's work-unit payload ("configs",
	// "accesses", "boundaries"); Closed is false when the log ended (or the
	// process died) before the end event — the span renders as unclosed
	// rather than being dropped, because an interrupted span is exactly
	// what a timeline reader is hunting.
	Work   float64
	Unit   string
	Closed bool

	Children []*SpanNode
}

// SpanTree pairs span events from one session's log (in log order) into a
// forest. Duplicate begin/end events from kill/resume re-execution carry
// identical span ids (the id is a pure function of the event coordinates)
// and collapse into one node, the same dedup-by-coordinates contract the
// rest of stcexplain applies. An end without a begin (a log truncated at
// the head) is skipped.
func SpanTree(evs []obs.RawEvent) []*SpanNode {
	var roots []*SpanNode
	var stack []*SpanNode
	open := map[string]*SpanNode{}
	begun := map[string]bool{}
	ended := map[string]bool{}
	for _, ev := range evs {
		id := ev.Str("span")
		if id == "" {
			continue
		}
		switch {
		case strings.HasSuffix(ev.Name, ".begin"):
			if begun[id] {
				continue // kill/resume re-emission of the same span
			}
			begun[id] = true
			n := &SpanNode{
				Name:    strings.TrimSuffix(ev.Name, ".begin"),
				Session: ev.Session,
				Window:  ev.Window,
				Step:    ev.Step,
				Config:  ev.Config,
			}
			if len(stack) > 0 {
				p := stack[len(stack)-1]
				p.Children = append(p.Children, n)
			} else {
				roots = append(roots, n)
			}
			stack = append(stack, n)
			open[id] = n
		case strings.HasSuffix(ev.Name, ".end"):
			if ended[id] {
				continue
			}
			n, ok := open[id]
			if !ok {
				continue
			}
			ended[id] = true
			delete(open, id)
			n.Closed = true
			n.Work = ev.Float("work")
			n.Unit = ev.Str("unit")
			// Pop to (and including) n; anything still above it on the
			// stack is an unclosed child the crash interrupted.
			for i := len(stack) - 1; i >= 0; i-- {
				if stack[i] == n {
					stack = stack[:i]
					break
				}
			}
		}
	}
	return roots
}

// timelineBarMax is the widest bar, in characters.
const timelineBarMax = 30

// Timeline renders the session's span tree as a text timeline. Bar widths
// are scaled from each span's deterministic work units (per unit kind, so a
// 7-config search and a 4000-access drain do not fight over one scale) —
// never from wall-clock, which lives only in the /metrics histograms. The
// output is therefore bit-identical across runs of the same stream and
// golden-testable. An empty string means the log carries no span events.
func Timeline(evs []obs.RawEvent) string {
	roots := SpanTree(evs)
	if len(roots) == 0 {
		return ""
	}
	type row struct {
		n     *SpanNode
		depth int
	}
	var rows []row
	maxWork := map[string]float64{}
	var walk func(ns []*SpanNode, depth int)
	walk = func(ns []*SpanNode, depth int) {
		for _, n := range ns {
			rows = append(rows, row{n, depth})
			if n.Work > maxWork[n.Unit] {
				maxWork[n.Unit] = n.Work
			}
			walk(n.Children, depth+1)
		}
	}
	walk(roots, 0)

	prefix := func(r row) string {
		return fmt.Sprintf("%s%s s%d w%d", strings.Repeat("  ", r.depth), r.n.Name, r.n.Session, r.n.Window)
	}
	width := 0
	for _, r := range rows {
		if w := len(prefix(r)); w > width {
			width = w
		}
	}
	var b strings.Builder
	b.WriteString("span timeline (bar widths are deterministic work units, not wall-clock)\n")
	for _, r := range rows {
		n := r.n
		fmt.Fprintf(&b, "%-*s  ", width, prefix(r))
		if !n.Closed {
			b.WriteString("[ unclosed ]\n")
			continue
		}
		bar := 0
		if n.Work > 0 && maxWork[n.Unit] > 0 {
			bar = int(n.Work/maxWork[n.Unit]*timelineBarMax + 0.5)
			if bar < 1 {
				bar = 1
			}
		}
		fmt.Fprintf(&b, "|%-*s| %g %s\n", timelineBarMax, strings.Repeat("#", bar), n.Work, n.Unit)
	}
	return b.String()
}
