// Package selftune reproduces "A Self-Tuning Cache Architecture for
// Embedded Systems" (Zhang, Vahid, Lysecky — DATE 2004): a configurable
// four-bank cache whose size, associativity, line size and way prediction
// are tuned by a small on-chip hardware searcher that minimises
// memory-access energy without ever flushing the cache.
//
// The library lives under internal/: the configurable cache model
// (internal/cache), the analytical 0.18 µm energy model (internal/cacti,
// internal/energy), the search heuristic with its FSMD hardware model
// (internal/tuner), a mini MIPS-like toolchain and core standing in for
// SimpleScalar (internal/isa, internal/asm, internal/cpu,
// internal/programs), the Powerstone/MediaBench workload models
// (internal/workload), and the assembled self-tuning system
// (internal/core). See DESIGN.md for the full inventory and EXPERIMENTS.md
// for paper-versus-measured results; bench_test.go regenerates every table
// and figure.
package selftune
