// Fullsystem: the whole platform in one piece — a real program (XTEA
// encryption, assembled from MIPS-like source) executes on the in-order
// core while the self-tuning memory system reconfigures underneath it.
// Miss latencies and way-misprediction bubbles stall the processor, so the
// tuner's choices show up directly in CPI.
package main

import (
	"fmt"
	"log"

	"selftune/internal/asm"
	"selftune/internal/core"
	"selftune/internal/programs"
	"selftune/internal/sim"
)

func main() {
	k, _ := programs.ByName("ucbqsort")
	prog, err := asm.Assemble(k.Source)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("program: %s (%s), %d bytes of code\n\n", k.Name, k.Description, 4*len(prog.Text))

	// Run once with tuning disabled in practice (an effectively infinite
	// measurement window freezes the caches at the 2 KB starting point).
	frozen := sim.NewFullSystem(prog, core.Options{Window: 1 << 40})
	if err := frozen.Run(0); err != nil {
		log.Fatal(err)
	}

	// And once with the tuner live.
	tuned := sim.NewFullSystem(prog, core.Options{Window: 8_000})
	if err := tuned.Run(0); err != nil {
		log.Fatal(err)
	}
	if tuned.Machine.Reg[2] != k.Reference() {
		log.Fatalf("checksum mismatch: tuning broke the program!")
	}

	fmt.Printf("frozen at minimum config: %s\n", frozen)
	fmt.Printf("self-tuning:              %s\n\n", tuned)
	for _, e := range tuned.Memory.Events() {
		fmt.Printf("  %s$ tuned after %d accesses -> %v (examined %d, %.1f nJ)\n",
			e.Cache, e.At, e.Chosen, e.Examined, e.TunerEnergy*1e9)
	}
	fmt.Printf("\nprogram output verified against the Go reference (checksum %#x);\n", k.Reference())
	fmt.Println("the caches were reconfigured mid-run without a flush and the result is identical.")
}
