// Selftuning: demonstrate the dynamic tuning approaches of paper §1 — a
// workload that switches phase mid-run (bcnt's tiny working set, then
// blit's conflicting strips), handled by periodic and by phase-triggered
// re-tuning. The phase detector notices the miss-rate shift and re-runs
// the heuristic; the cache is never flushed.
package main

import (
	"fmt"

	"selftune/internal/core"
	"selftune/internal/trace"
	"selftune/internal/workload"
)

func main() {
	a, _ := workload.ByName("bcnt")
	b, _ := workload.ByName("blit")
	accs := append(a.Generate(400_000), b.Generate(400_000)...)
	fmt.Printf("workload: %s for 400k accesses, then %s for 400k\n\n", a.Name, b.Name)

	for _, mode := range []core.Mode{core.TuneOnce, core.TunePeriodic, core.TuneOnPhaseChange} {
		sys := core.New(core.Options{
			Mode:           mode,
			Window:         5_000,
			Period:         150_000,
			PhaseThreshold: 0.01,
		})
		sys.Run(trace.NewSliceSource(accs), 0)

		fmt.Printf("mode=%-8s sessions=%d  final I$=%v D$=%v\n",
			mode, len(sys.Events()), sys.IConfig(), sys.DConfig())
		for _, e := range sys.Events() {
			fmt.Printf("  %s$ tuned at access %7d -> %-12v (examined %d, settle writebacks %d)\n",
				e.Cache, e.At, e.Chosen, e.Examined, e.SettleWritebacks)
		}
		r := sys.Report()
		fmt.Printf("  whole-run misses: I$ %.2f%%  D$ %.2f%%\n\n",
			100*r.IStats.MissRate(), 100*r.DStats.MissRate())
	}

	fmt.Println("TuneOnce keeps bcnt's tiny configuration and suffers once blit starts;")
	fmt.Println("the phase detector re-tunes right after the switch and lands on blit's")
	fmt.Println("two-way 8 KB configuration without a single cache flush.")
}
