// Quickstart: run the self-tuning cache system on one benchmark and print
// what the on-chip tuner decided and what it saved versus a fixed
// four-way base cache.
package main

import (
	"fmt"

	"selftune/internal/cache"
	"selftune/internal/core"
	"selftune/internal/energy"
	"selftune/internal/report"
	"selftune/internal/workload"
)

func main() {
	// The workload: a model of the Powerstone crc benchmark.
	prof, _ := workload.ByName("crc")

	// A self-tuning system: both caches start at 2 KB direct-mapped
	// 16 B lines; the tuner measures each candidate configuration over
	// a 10k-access window and walks the paper's heuristic.
	sys := core.New(core.Options{Mode: core.TuneOnce})
	sys.Run(prof.NewSource(), 800_000)

	fmt.Printf("workload: %s — %s\n\n", prof.Name, prof.Description)
	for _, e := range sys.Events() {
		fmt.Printf("%s-cache tuned after %d accesses: chose %v (examined %d of 27 configurations, %.1f nJ tuner energy)\n",
			e.Cache, e.At, e.Chosen, e.Examined, e.TunerEnergy*1e9)
	}

	r := sys.Report()
	p := energy.DefaultParams()
	base := cache.BaseConfig()
	fmt.Printf("\nversus the fixed %v base cache:\n", base)
	fmt.Printf("  I$: %s energy saved (miss rate %.2f%%)\n",
		report.Pct(1-r.IBreak.Total()/p.Total(base, r.IStats)), 100*r.IStats.MissRate())
	fmt.Printf("  D$: %s energy saved (miss rate %.2f%%)\n",
		report.Pct(1-r.DBreak.Total()/p.Total(base, r.DStats)), 100*r.DStats.MissRate())
	fmt.Printf("  tuner cost: %.1f nJ — %.6f%% of the memory-access energy it optimised\n",
		r.TunerEnergy*1e9, 100*r.TunerEnergy/(r.IBreak.Total()+r.DBreak.Total()))
}
