// Vmkernels: run real Powerstone-style kernels — assembled from MIPS-like
// source and executed on the mini in-order core — and tune the cache for
// each one's actual reference stream. This is the fully-real end of the
// reproduction: no synthetic trace model, just programs.
package main

import (
	"fmt"
	"log"

	"selftune/internal/cache"
	"selftune/internal/energy"
	"selftune/internal/programs"
	"selftune/internal/report"
	"selftune/internal/trace"
	"selftune/internal/tuner"
)

func main() {
	p := energy.DefaultParams()
	base := cache.BaseConfig()

	tb := report.NewTable("kernel", "insts", "I-cache", "No.", "I-save", "D-cache", "No.", "D-save", "optimal?")
	for _, k := range programs.All() {
		accs, err := k.Trace()
		if err != nil {
			log.Fatalf("%s: %v", k.Name, err)
		}
		inst, data := trace.Split(trace.NewSliceSource(accs))

		iev := tuner.NewTraceEvaluator(inst, p)
		dev := tuner.NewTraceEvaluator(data, p)
		ih, dh := tuner.SearchPaper(iev), tuner.SearchPaper(dev)

		opt := "yes"
		iOpt, dOpt := tuner.Exhaustive(iev).Best, tuner.Exhaustive(dev).Best
		if iOpt.Cfg != ih.Best.Cfg {
			opt = "I: " + iOpt.Cfg.String()
		}
		if dOpt.Cfg != dh.Best.Cfg {
			if opt != "yes" {
				opt += " "
			} else {
				opt = ""
			}
			opt += "D: " + dOpt.Cfg.String()
		}
		tb.Add(k.Name, fmt.Sprint(len(inst)),
			ih.Best.Cfg.String(), fmt.Sprint(ih.NumExamined()),
			report.Pct(1-ih.Best.Energy/iev.Evaluate(base).Energy),
			dh.Best.Cfg.String(), fmt.Sprint(dh.NumExamined()),
			report.Pct(1-dh.Best.Energy/dev.Evaluate(base).Energy),
			opt)
	}
	fmt.Println("self-tuning results for real kernels executed on the mini MIPS-like core:")
	fmt.Print(tb.String())
	fmt.Println("\nsavings are versus the fixed 8K 4-way base cache; every kernel is a real")
	fmt.Println("assembly program validated against a Go reference implementation.")
	fmt.Println("note blit: its two 8 KB buffers sit exactly 0x2000 apart, so they conflict")
	fmt.Println("in every direct-mapped mapping — the same greedy-search trap the paper")
	fmt.Println("reports for pjpeg and mpeg2 arises here organically from real code.")
}
