// Multilevel: the paper's §3.4 generalisation — tune the line sizes of a
// two-level hierarchy (16 KB 8-way L1 I/D + 256 KB 8-way unified L2, four
// candidate line sizes each). Brute force needs 4*4*4 = 64 simulations;
// the one-parameter-at-a-time heuristic needs at most 4+3+3 = 10 and lands
// on (or next to) the same point.
package main

import (
	"fmt"

	"selftune/internal/energy"
	"selftune/internal/sim"
	"selftune/internal/tuner"
	"selftune/internal/workload"
)

func main() {
	p := energy.DefaultParams()
	prof := workload.ParserLike()
	accs := prof.Generate(200_000)
	fmt.Printf("workload: %s (%d accesses)\nhierarchy: 16K 8-way L1I/L1D + 256K 8-way unified L2\n\n",
		prof.Description, len(accs))

	eval := sim.HierarchyEvaluator(accs, p)
	params := sim.LineParams()

	h := tuner.MultilevelSearch(eval, params)
	bf := tuner.MultilevelBruteForce(eval, params)

	show := func(tag string, r tuner.MultilevelResult) {
		fmt.Printf("%-12s examined %2d of %d combinations -> L1I=%dB L1D=%dB L2=%dB  (%.3g J)\n",
			tag, r.Examined, r.BruteForceSize, r.Best[0], r.Best[1], r.Best[2], r.BestEnergy)
	}
	show("heuristic", h)
	show("brute force", bf)
	fmt.Printf("\nheuristic energy is %.1f%% of the brute-force optimum, at %.0f%% of the search cost\n",
		100*h.BestEnergy/bf.BestEnergy, 100*float64(h.Examined)/float64(bf.Examined))
	fmt.Println("\nwith n parameters of m values the heuristic searches m*n combinations, not m^n —")
	fmt.Println("the paper's example: 10 parameters of 10 values = 10,000,000,000 vs 100.")
}
