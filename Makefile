GO ?= go

.PHONY: build test race vet bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$'

check: build vet test
