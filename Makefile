GO ?= go
FUZZTIME ?= 30s

.PHONY: build test race vet bench bench-json check fuzz obs-smoke fleet-smoke chaos-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$'

# Fast-kernel vs reference throughput on the standard sweep shapes,
# recorded machine-readably (see cmd/stcbench; BENCH_10.json is committed).
bench-json:
	$(GO) run ./cmd/stcbench -json BENCH_10.json

# End-to-end observability smoke: daemon up with telemetry, endpoints
# scraped, event log explained (see scripts/obs_smoke.sh).
obs-smoke:
	bash scripts/obs_smoke.sh

# End-to-end fleet smoke: stcd serving three sessions over the wire
# protocol, metrics/allocator/explainer asserted (see scripts/fleet_smoke.sh).
fleet-smoke:
	bash scripts/fleet_smoke.sh

# Self-healing smoke: the seeded network-chaos soak, then a reconnecting
# client, bounded shutdown drain, and checkpoint scrub against real
# binaries (see scripts/chaos_smoke.sh).
chaos-smoke:
	bash scripts/chaos_smoke.sh

# go test runs one -fuzz pattern per invocation, so each target gets its own.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzReadDinero -fuzztime=$(FUZZTIME) ./internal/trace/
	$(GO) test -run='^$$' -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/trace/
	$(GO) test -run='^$$' -fuzz=FuzzStreamDecoder -fuzztime=$(FUZZTIME) ./internal/trace/
	$(GO) test -run='^$$' -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/checkpoint/
	$(GO) test -run='^$$' -fuzz=FuzzFastSimVsReference -fuzztime=$(FUZZTIME) ./internal/fastsim/
	$(GO) test -run='^$$' -fuzz=FuzzFusedVsReference -fuzztime=$(FUZZTIME) ./internal/fastsim/
	$(GO) test -run='^$$' -fuzz=FuzzIngest -fuzztime=$(FUZZTIME) ./internal/fleet/
	$(GO) test -run='^$$' -fuzz=FuzzChaosnetFraming -fuzztime=$(FUZZTIME) ./internal/fleet/

# check is the tier-1 gate: build, vet, and the full test suite — which
# includes the checkpoint round-trip/corruption-recovery tests and the
# chaos kill/restart soak.
check: build vet test
