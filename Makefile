GO ?= go
FUZZTIME ?= 30s

.PHONY: build test race vet bench check fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$'

# go test runs one -fuzz pattern per invocation, so each target gets its own.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzReadDinero -fuzztime=$(FUZZTIME) ./internal/trace/
	$(GO) test -run='^$$' -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/trace/

check: build vet test
