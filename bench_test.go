// Benchmarks regenerating every table and figure of the paper's evaluation.
// Run with:
//
//	go test -bench=. -benchmem -v
//
// Each benchmark times the underlying experiment machinery and reports the
// paper-relevant quantities as custom metrics; the -v log carries the
// regenerated rows/series. EXPERIMENTS.md records paper-vs-measured values.
package selftune_test

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"selftune/internal/cache"
	"selftune/internal/energy"
	"selftune/internal/sim"
	"selftune/internal/trace"
	"selftune/internal/tuner"
	"selftune/internal/workload"
)

const benchAccesses = 150_000

type benchStream struct {
	name  string
	kind  string // "I" or "D"
	accs  []trace.Access
	paper string
}

// benchStreams generates the 38 per-cache streams of the benchmark suite.
func benchStreams() []benchStream {
	var out []benchStream
	for _, prof := range workload.Profiles() {
		inst, data := trace.Split(trace.NewSliceSource(prof.Generate(benchAccesses)))
		out = append(out,
			benchStream{prof.Name, "I", inst, prof.Paper.ICfg},
			benchStream{prof.Name, "D", data, prof.Paper.DCfg})
	}
	return out
}

// BenchmarkFigure2EnergyVsCacheSize regenerates Figure 2: on-chip, off-chip
// and total memory energy versus cache size (1 KB-1 MB) for the parser-like
// workload. The paper's observation — off-chip energy falls steeply then
// flattens while cache energy keeps growing, giving the total a knee — is
// reported as the knee position.
func BenchmarkFigure2EnergyVsCacheSize(b *testing.B) {
	p := energy.DefaultParams()
	_, data := trace.Split(trace.NewSliceSource(workload.ParserLike().Generate(benchAccesses)))
	sizes := []int{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10,
		64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := cache.GenericConfig{SizeBytes: sizes[i%len(sizes)], Ways: 1, LineBytes: 32}
		g := cache.MustGeneric(cfg)
		for _, a := range data {
			g.Access(a.Addr, a.IsWrite())
		}
	}
	b.StopTimer()

	knee, kneeE := 0, 0.0
	for _, size := range sizes {
		cfg := cache.GenericConfig{SizeBytes: size, Ways: 1, LineBytes: 32}
		g := cache.MustGeneric(cfg)
		for _, a := range data {
			g.Access(a.Addr, a.IsWrite())
		}
		br := p.GenericEvaluate(cfg, g.Stats())
		b.Logf("size=%4dKB cache=%.3fmJ offchip=%.3fmJ total=%.3fmJ",
			size/1024, br.OnChip()*1e3, br.OffChip()*1e3, br.Total()*1e3)
		if knee == 0 || br.Total() < kneeE {
			knee, kneeE = size, br.Total()
		}
	}
	b.ReportMetric(float64(knee)/1024, "kneeKB")
}

// benchFigure34 regenerates Figures 3 and 4: average miss rate and
// normalised fetch energy over the 18 base configurations. The reported
// metric is the max/min energy spread across configurations — the paper's
// "factor of two or more" size impact.
func benchFigure34(b *testing.B, kind string) {
	p := energy.DefaultParams()
	streams := benchStreams()
	var sel []benchStream
	for _, s := range streams {
		if s.kind == kind {
			sel = append(sel, s)
		}
	}
	configs := cache.BaseConfigs()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sel[i%len(sel)]
		cfg := configs[i%len(configs)]
		c := cache.MustConfigurable(cfg)
		for _, a := range s.accs {
			c.Access(a.Addr, a.IsWrite())
		}
	}
	b.StopTimer()

	minE, maxE := 0.0, 0.0
	for _, cfg := range configs {
		var mr, e float64
		for _, s := range sel {
			c := cache.MustConfigurable(cfg)
			for _, a := range s.accs {
				c.Access(a.Addr, a.IsWrite())
			}
			st := c.Stats()
			mr += st.MissRate()
			e += p.Total(cfg, st)
		}
		mr /= float64(len(sel))
		b.Logf("%-10v avg-miss=%5.2f%% energy=%.4gmJ", cfg, 100*mr, e*1e3)
		if minE == 0 || e < minE {
			minE = e
		}
		if e > maxE {
			maxE = e
		}
	}
	b.ReportMetric(maxE/minE, "energy-spread")
}

// BenchmarkFigure3InstructionSweep regenerates Figure 3 (I-cache).
func BenchmarkFigure3InstructionSweep(b *testing.B) { benchFigure34(b, "I") }

// BenchmarkFigure4DataSweep regenerates Figure 4 (D-cache).
func BenchmarkFigure4DataSweep(b *testing.B) { benchFigure34(b, "D") }

// BenchmarkTable1Heuristic regenerates Table 1: the heuristic's choice,
// configurations examined and energy savings versus the 8 KB 4-way base for
// every benchmark and cache. Metrics: average configurations examined
// (paper: ~5.4-5.8), fraction of selections identical to the paper's, and
// average savings.
func BenchmarkTable1Heuristic(b *testing.B) {
	p := energy.DefaultParams()
	streams := benchStreams()
	base := cache.BaseConfig()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := streams[i%len(streams)]
		tuner.SearchPaper(tuner.NewTraceEvaluator(s.accs, p))
	}
	b.StopTimer()

	var examined, matches int
	var saveI, saveD float64
	var nI, nD int
	for _, s := range streams {
		ev := tuner.NewTraceEvaluator(s.accs, p)
		res := tuner.SearchPaper(ev)
		examined += res.NumExamined()
		if res.Best.Cfg.String() == s.paper {
			matches++
		}
		save := 1 - res.Best.Energy/ev.Evaluate(base).Energy
		if s.kind == "I" {
			saveI += save
			nI++
		} else {
			saveD += save
			nD++
		}
		b.Logf("%-9s %s chose %-12v (paper %-12s) examined=%d save=%.1f%%",
			s.name, s.kind, res.Best.Cfg, s.paper, res.NumExamined(), 100*save)
	}
	b.ReportMetric(float64(examined)/float64(len(streams)), "avg-examined")
	b.ReportMetric(float64(matches)/float64(len(streams)), "paper-match-frac")
	b.ReportMetric(100*saveI/float64(nI), "avg-I-save-pct")
	b.ReportMetric(100*saveD/float64(nD), "avg-D-save-pct")
}

// BenchmarkHeuristicVsExhaustive regenerates §4's quality claim: the
// heuristic finds the optimum in nearly all cases and never misses by much.
func BenchmarkHeuristicVsExhaustive(b *testing.B) {
	p := energy.DefaultParams()
	streams := benchStreams()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := streams[i%len(streams)]
		ev := tuner.NewTraceEvaluator(s.accs, p)
		tuner.SearchPaper(ev)
		tuner.Exhaustive(ev)
	}
	b.StopTimer()

	misses, worst := 0, 1.0
	for _, s := range streams {
		ev := tuner.NewTraceEvaluator(s.accs, p)
		h := tuner.SearchPaper(ev)
		x := tuner.Exhaustive(ev)
		if h.Best.Cfg != x.Best.Cfg {
			misses++
			b.Logf("%s %s: heuristic %v vs optimal %v (%.1f%% worse)",
				s.name, s.kind, h.Best.Cfg, x.Best.Cfg, 100*(h.Best.Energy/x.Best.Energy-1))
		}
		if r := h.Best.Energy / x.Best.Energy; r > worst {
			worst = r
		}
	}
	b.ReportMetric(float64(misses), "optimum-misses")
	b.ReportMetric(100*(worst-1), "worst-excess-pct")
}

// BenchmarkAlternativeOrdering regenerates §4's ordering comparison: the
// strawman order (line, assoc, pred, size) misses the optimum far more
// often than the paper's size-first order.
func BenchmarkAlternativeOrdering(b *testing.B) {
	p := energy.DefaultParams()
	streams := benchStreams()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := streams[i%len(streams)]
		tuner.Search(tuner.NewTraceEvaluator(s.accs, p), tuner.AlternativeOrder)
	}
	b.StopTimer()

	var paperMiss, altMiss int
	for _, s := range streams {
		ev := tuner.NewTraceEvaluator(s.accs, p)
		opt := tuner.Exhaustive(ev).Best.Cfg
		if tuner.Search(ev, tuner.PaperOrder).Best.Cfg != opt {
			paperMiss++
		}
		if tuner.Search(ev, tuner.AlternativeOrder).Best.Cfg != opt {
			altMiss++
		}
	}
	b.Logf("of %d streams: paper order missed %d optima, alternative order missed %d",
		len(streams), paperMiss, altMiss)
	b.ReportMetric(float64(paperMiss), "paper-order-misses")
	b.ReportMetric(float64(altMiss), "alt-order-misses")
}

// BenchmarkTunerHardware regenerates §4's hardware cost results: gate
// count (~4k), area (~0.039 mm², ~3% of a MIPS 4Kp), power (2.69 mW, ~0.5%
// of the core), 64 cycles per configuration and a few nJ per search.
func BenchmarkTunerHardware(b *testing.B) {
	p := energy.DefaultParams()
	prof, _ := workload.ByName("g721")
	inst, _ := trace.Split(trace.NewSliceSource(prof.Generate(benchAccesses)))
	ev := tuner.NewTraceEvaluator(inst, p)
	measure := func(cfg cache.Config) tuner.Measurement {
		return tuner.MeasurementFromStats(cfg, ev.Evaluate(cfg).Stats, p)
	}

	b.ResetTimer()
	var f *tuner.FSMD
	for i := 0; i < b.N; i++ {
		f = tuner.NewFSMD(p)
		f.Run(measure)
	}
	b.StopTimer()

	hw := tuner.NewHardwareModel()
	searchE := hw.SearchEnergy(p, f.EvaluationCycles(), f.NumSearch)
	b.Logf("gates=%d area=%.4fmm2 (%.1f%% of MIPS 4Kp) power=%.2fmW (%.2f%% of core)",
		hw.Gates(), hw.AreaMM2(p.Tech), 100*hw.AreaOverheadVsMIPS(p.Tech),
		hw.PowerWatts*1e3, 100*hw.PowerOverheadVsMIPS())
	b.Logf("search: %d configs x %d cycles = %.2f nJ", f.NumSearch, f.EvaluationCycles(), searchE*1e9)
	b.ReportMetric(float64(hw.Gates()), "gates")
	b.ReportMetric(float64(f.EvaluationCycles()), "cycles-per-config")
	b.ReportMetric(searchE*1e9, "search-nJ")
}

// BenchmarkFlushAblation regenerates §4's flush-cost comparison: searching
// sizes largest-first forces dirty writebacks whose energy dwarfs the
// tuner's own (the paper reports ~48,000x).
func BenchmarkFlushAblation(b *testing.B) {
	p := energy.DefaultParams()
	var datas [][]trace.Access
	for _, name := range []string{"blit", "brev", "ucbqsort", "mpeg2"} {
		prof, _ := workload.ByName(name)
		_, d := trace.Split(trace.NewSliceSource(prof.Generate(benchAccesses)))
		datas = append(datas, d)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tuner.FlushAblation(datas[i%len(datas)], p, 0)
	}
	b.StopTimer()

	var ratios float64
	for i, d := range datas {
		r := tuner.FlushAblation(d, p, 0)
		ratios += r.Ratio
		b.Logf("stream %d: %d settle writebacks = %.3g J vs tuner %.3g J (%.0fx)",
			i, r.SettleWritebacks, r.WritebackEnergy, r.TunerEnergy, r.Ratio)
	}
	b.ReportMetric(ratios/float64(len(datas)), "writeback-vs-tuner-x")
}

// BenchmarkMultilevelHeuristic regenerates §3.4's multilevel example: the
// heuristic tunes the three line sizes of a two-level hierarchy in at most
// 10 simulations instead of the 64 of brute force, within a few percent.
func BenchmarkMultilevelHeuristic(b *testing.B) {
	p := energy.DefaultParams()
	accs := workload.ParserLike().Generate(benchAccesses)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tuner.MultilevelSearch(sim.HierarchyEvaluator(accs, p), sim.LineParams())
	}
	b.StopTimer()

	eval := sim.HierarchyEvaluator(accs, p)
	h := tuner.MultilevelSearch(eval, sim.LineParams())
	bf := tuner.MultilevelBruteForce(eval, sim.LineParams())
	b.Logf("heuristic %v in %d sims; brute force %v in %d sims; ratio %.3f",
		h.Best, h.Examined, bf.Best, bf.Examined, h.BestEnergy/bf.BestEnergy)
	b.ReportMetric(float64(h.Examined), "heuristic-sims")
	b.ReportMetric(float64(bf.Examined), "bruteforce-sims")
	b.ReportMetric(h.BestEnergy/bf.BestEnergy, "energy-ratio")
}

// BenchmarkWayPredictionAccuracy regenerates §3.3's accuracy claim:
// MRU way prediction is ~90% accurate for instruction caches and ~70% for
// data caches.
func BenchmarkWayPredictionAccuracy(b *testing.B) {
	cfg := cache.Config{SizeBytes: 8192, Ways: 4, LineBytes: 16, WayPredict: true}
	streams := benchStreams()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := streams[i%len(streams)]
		c := cache.MustConfigurable(cfg)
		for _, a := range s.accs {
			c.Access(a.Addr, a.IsWrite())
		}
	}
	b.StopTimer()

	var accI, accD float64
	var nI, nD int
	for _, s := range streams {
		c := cache.MustConfigurable(cfg)
		for _, a := range s.accs {
			c.Access(a.Addr, a.IsWrite())
		}
		acc := c.Stats().PredAccuracy()
		if s.kind == "I" {
			accI += acc
			nI++
		} else {
			accD += acc
			nD++
		}
	}
	b.Logf("average MRU accuracy at %v: I$=%.1f%% D$=%.1f%% (paper: ~90%% / ~70%%)",
		cfg, 100*accI/float64(nI), 100*accD/float64(nD))
	b.ReportMetric(100*accI/float64(nI), "I-accuracy-pct")
	b.ReportMetric(100*accD/float64(nD), "D-accuracy-pct")
}

// BenchmarkOnlineTuningSession times a complete no-flush on-line tuning
// session on a live cache (the §3.5 hardware behaviour end to end).
func BenchmarkOnlineTuningSession(b *testing.B) {
	p := energy.DefaultParams()
	prof, _ := workload.ByName("adpcm")
	_, data := trace.Split(trace.NewSliceSource(prof.Generate(600_000)))

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cache.MustConfigurable(cache.MinConfig())
		o := tuner.NewOnline(c, p, 10_000)
		for _, a := range data {
			if o.Done() {
				break
			}
			o.Access(a.Addr, a.IsWrite())
		}
		if !o.Done() {
			b.Fatal("session did not complete")
		}
	}
	b.StopTimer()

	c := cache.MustConfigurable(cache.MinConfig())
	o := tuner.NewOnline(c, p, 10_000)
	for _, a := range data {
		if o.Done() {
			break
		}
		o.Access(a.Addr, a.IsWrite())
	}
	b.Logf("online session: chose %v after %d configurations, %d settle writebacks",
		o.Result().Best.Cfg, o.Result().NumExamined(), o.SettleWritebacks())
	b.ReportMetric(float64(o.Result().NumExamined()), "configs-examined")
}

// BenchmarkCacheAccess is the raw simulator microbenchmark.
func BenchmarkCacheAccess(b *testing.B) {
	for _, s := range []string{"2K_1W_16B", "8K_4W_32B", "8K_4W_16B_P"} {
		cfg, err := cache.ParseConfig(s)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(s, func(b *testing.B) {
			c := cache.MustConfigurable(cfg)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.Access(uint32(i*64), i%8 == 0)
			}
		})
	}
}

var sinkEnergy float64

// BenchmarkEnergyEvaluate times Equation 1 evaluation.
func BenchmarkEnergyEvaluate(b *testing.B) {
	p := energy.DefaultParams()
	st := cache.Stats{Accesses: 100_000, Hits: 98_000, Misses: 2_000, SublinesFilled: 4_000, Writebacks: 500}
	cfg := cache.BaseConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkEnergy = p.Total(cfg, st)
	}
	_ = fmt.Sprint(sinkEnergy)
}

// BenchmarkScalableSpace runs the §3.4 larger-cache study: the heuristic on
// an 8-bank geometry (4-32 KB, up to 8 ways, lines to 128 B; 64
// configurations) versus the exhaustive optimum.
func BenchmarkScalableSpace(b *testing.B) {
	p := energy.DefaultParams()
	geo := cache.Geometry{BankBytes: 4096, NumBanks: 8, MaxLineBytes: 128}
	streams := benchStreams()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := streams[i%len(streams)]
		tuner.SearchScalable(geo, s.accs, p)
	}
	b.StopTimer()

	misses, examined := 0, 0
	for _, s := range streams {
		ev := tuner.NewScalableEvaluator(geo, s.accs, p)
		h := tuner.SearchInSpace(ev, tuner.PaperOrder, tuner.GeometrySpace(geo))
		x := tuner.ExhaustiveConfigs(ev, geo.Configs())
		examined += h.NumExamined()
		if h.Best.Cfg != x.Best.Cfg {
			misses++
			b.Logf("%s %s: heuristic %v vs optimal %v (%.0f%% worse)",
				s.name, s.kind, h.Best.Cfg, x.Best.Cfg, 100*(h.Best.Energy/x.Best.Energy-1))
		}
	}
	b.Logf("64-config space: avg examined %.1f, optimum missed on %d of %d streams",
		float64(examined)/float64(len(streams)), misses, len(streams))
	b.ReportMetric(float64(examined)/float64(len(streams)), "avg-examined-of-64")
	b.ReportMetric(float64(misses), "optimum-misses")
}

// BenchmarkSweepSerialVsParallel times the exhaustive 27-configuration sweep
// through the replay engine at one worker versus GOMAXPROCS workers. The
// results are checked bit-identical before timing; on a multicore machine the
// parallel sub-benchmark's ns/op should drop roughly linearly with cores.
func BenchmarkSweepSerialVsParallel(b *testing.B) {
	p := energy.DefaultParams()
	prof, _ := workload.ByName("mpeg2")
	_, data := trace.Split(trace.NewSliceSource(prof.Generate(benchAccesses)))
	configs := cache.AllConfigs()

	serial := tuner.ExhaustiveWorkers(tuner.NewTraceEvaluator(data, p), configs, 1)
	parallel := tuner.ExhaustiveWorkers(tuner.NewTraceEvaluator(data, p), configs, runtime.GOMAXPROCS(0))
	if !reflect.DeepEqual(serial, parallel) {
		b.Fatal("parallel sweep is not bit-identical to the serial sweep")
	}

	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// A fresh evaluator per iteration so the memo
				// cannot short-circuit the replays being timed.
				tuner.ExhaustiveWorkers(tuner.NewTraceEvaluator(data, p), configs, w)
			}
		})
	}
}
