#!/usr/bin/env bash
# Chaos smoke: the self-healing surfaces, end to end. First the seeded
# network-chaos soak (fault-injected TCP must yield sessions that are either
# bit-identical to fault-free runs or typed failures), then the operator
# pieces on real binaries: a reconnecting client delivering through stcd, a
# bounded shutdown drain, and checkpoint scrubbing of an injected
# corruption.
set -euo pipefail

cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'kill "${pid:-}" 2>/dev/null || true; rm -rf "$tmp"' EXIT

# 1. The in-process soak: seeded cuts/partial writes/latency over real
#    loopback TCP, three seeds x shard counts, plus the sticky-victim
#    typed-failure leg.
go test ./internal/experiments/ -run 'TestNetChaos' -count=1

go build -o "$tmp/stcd" ./cmd/stcd
go build -o "$tmp/stcexplain" ./cmd/stcexplain

# 2. A fleet with a bounded drain and dense checkpointing (the scrub leg
#    below wants several generations on disk).
"$tmp/stcd" -serve -addr 127.0.0.1:0 -dir "$tmp/fleet" -window 1000 \
    -checkpoint-every 1 -keep 8 -shutdown-timeout 5s \
    -obs-addr 127.0.0.1:0 -obs-log "$tmp/events.jsonl" \
    >"$tmp/stcd.out" 2>&1 &
pid=$!

ingest="" obs=""
for _ in $(seq 1 100); do
    ingest="$(sed -n 's|.*fleet ingest on \([0-9.:]*\) .*|\1|p' "$tmp/stcd.out" | head -1)"
    obs="$(sed -n 's|.*endpoints on http://\([^/]*\)/.*|\1|p' "$tmp/stcd.out" | head -1)"
    [ -n "$ingest" ] && [ -n "$obs" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "stcd exited early:"; cat "$tmp/stcd.out"; exit 1; }
    sleep 0.1
done
[ -n "$ingest" ] && [ -n "$obs" ] || { echo "stcd never announced its addresses"; cat "$tmp/stcd.out"; exit 1; }
echo "stcd ingest on $ingest, observability on $obs"

# The client is the reconnecting one now: it must report how many delivery
# attempts the stream took (one, on a healthy network).
"$tmp/stcd" -connect "$ingest" -session crc -workload crc -n 100000 \
    -retries 5 -retry-seed 7 >"$tmp/client.out" 2>&1 \
    || { echo "client failed:"; cat "$tmp/client.out"; exit 1; }
grep -q '1 attempt(s)' "$tmp/client.out" \
    || { echo "client did not report its attempt count:"; cat "$tmp/client.out"; exit 1; }

settled=""
for _ in $(seq 1 300); do
    curl -s "http://$obs/metrics" >"$tmp/metrics.txt" || true
    if grep -q 'fleet_session_consumed{session="crc"} 100000' "$tmp/metrics.txt" \
        && grep -q 'fleet_session_tuning{session="crc"} 0' "$tmp/metrics.txt"; then
        settled=yes
        break
    fi
    sleep 0.1
done
[ -n "$settled" ] || { echo "session never consumed+settled; metrics:"; cat "$tmp/metrics.txt"; exit 1; }

# 3. The bounded drain: with no stragglers the TERM must complete well
#    inside the 5s deadline, without a force-close event.
kill -TERM "$pid"
wait "$pid" || { echo "stcd exited non-zero on graceful drain:"; cat "$tmp/stcd.out"; exit 1; }
grep -q 'drain_timeout' "$tmp/events.jsonl" 2>/dev/null \
    && { echo "clean drain emitted a drain_timeout event"; exit 1; }

# 4. Scrub: rot the newest generation, then verify report mode fails loudly
#    without touching the file, gc mode removes it, and a re-scrub is clean.
gen="$(ls "$tmp/fleet/sessions/s-crc/"ckpt-*.stck | sort | tail -1)"
[ -n "$gen" ] || { echo "no checkpoint generations on disk"; exit 1; }
count_before="$(ls "$tmp/fleet/sessions/s-crc/"ckpt-*.stck | wc -l)"
[ "$count_before" -ge 2 ] || { echo "want >=2 generations for the scrub leg, got $count_before"; exit 1; }
printf 'CORRUPT!' | dd of="$gen" bs=1 seek=16 conv=notrunc status=none

if "$tmp/stcexplain" -scrub "$tmp/fleet" >"$tmp/scrub.out" 2>&1; then
    echo "scrub of a rotted store exited zero:"; cat "$tmp/scrub.out"; exit 1
fi
grep -q 'corrupt' "$tmp/scrub.out" || { echo "scrub did not report the corruption:"; cat "$tmp/scrub.out"; exit 1; }
[ -f "$gen" ] || { echo "report-only scrub deleted the corrupt generation"; exit 1; }

"$tmp/stcexplain" -scrub "$tmp/fleet" -scrub-gc >"$tmp/scrub-gc.out" 2>&1 \
    || { echo "scrub-gc failed:"; cat "$tmp/scrub-gc.out"; exit 1; }
[ ! -f "$gen" ] || { echo "scrub-gc left the corrupt generation behind"; exit 1; }
"$tmp/stcexplain" -scrub "$tmp/fleet" >/dev/null \
    || { echo "re-scrub after gc still reports corruption"; exit 1; }

echo "chaos smoke: OK"
