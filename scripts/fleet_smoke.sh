#!/usr/bin/env bash
# End-to-end smoke test of the fleet: start stcd serving the wire protocol,
# stream three workload traces into it as separate sessions, and assert
# that /metrics shows all three sessions fully consumed and settled, that
# the capacity allocator produced per-session assignments, and that
# stcexplain can extract one session's search story from the shared log.
set -euo pipefail

cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'kill "${pid:-}" "${pid2:-}" 2>/dev/null || true; rm -rf "$tmp"' EXIT

go build -o "$tmp/stcd" ./cmd/stcd
go build -o "$tmp/stcexplain" ./cmd/stcexplain

"$tmp/stcd" -serve -addr 127.0.0.1:0 -dir "$tmp/fleet" -window 1000 \
    -obs-addr 127.0.0.1:0 -obs-log "$tmp/events.jsonl" \
    -alloc-budget 16384 -alloc-dp \
    >"$tmp/stcd.out" 2>&1 &
pid=$!

ingest="" obs=""
for _ in $(seq 1 100); do
    ingest="$(sed -n 's|.*fleet ingest on \([0-9.:]*\) .*|\1|p' "$tmp/stcd.out" | head -1)"
    obs="$(sed -n 's|.*endpoints on http://\([^/]*\)/.*|\1|p' "$tmp/stcd.out" | head -1)"
    [ -n "$ingest" ] && [ -n "$obs" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "stcd exited early:"; cat "$tmp/stcd.out"; exit 1; }
    sleep 0.1
done
[ -n "$ingest" ] && [ -n "$obs" ] || { echo "stcd never announced its addresses"; cat "$tmp/stcd.out"; exit 1; }
echo "stcd ingest on $ingest, observability on $obs"

# Three tenants, three workloads, one server.
for wl in crc bcnt bilv; do
    "$tmp/stcd" -connect "$ingest" -session "$wl" -workload "$wl" -n 150000
done

# The clients have hung up; wait for the shard workers to drain the queues
# (consumed reaches 150000 per session and every session settles).
settled=""
for _ in $(seq 1 300); do
    curl -s "http://$obs/metrics" >"$tmp/metrics.txt" || true
    if [ "$(grep -c 'fleet_session_consumed{session="[a-z]*"} 150000' "$tmp/metrics.txt")" = 3 ] \
        && [ "$(grep -c 'fleet_session_tuning{session="[a-z]*"} 0' "$tmp/metrics.txt")" = 3 ]; then
        settled=yes
        break
    fi
    sleep 0.1
done
[ -n "$settled" ] || { echo "three sessions never consumed+settled; metrics:"; cat "$tmp/metrics.txt"; exit 1; }

# The allocator must have partitioned the shared budget across the tenants.
[ "$(grep -c 'fleet_alloc_bytes{session="[a-z]*"} [1-9]' "$tmp/metrics.txt")" = 3 ] \
    || { echo "allocator produced no per-session assignments:"; cat "$tmp/metrics.txt"; exit 1; }

code="$(curl -s -o "$tmp/healthz.json" -w '%{http_code}' "http://$obs/healthz")"
[ "$code" = 200 ] || { echo "/healthz returned $code"; exit 1; }

kill -TERM "$pid"
wait "$pid" || true

# Per-session filtering of the shared fleet log must reconstruct a solo-run
# search story, within the paper's examined-configuration bound.
for wl in crc bcnt bilv; do
    "$tmp/stcexplain" -session "$wl" -max-examined 8 "$tmp/events.jsonl" >/dev/null
done

# Each session checkpoints into its own namespaced store.
for wl in crc bcnt bilv; do
    ls "$tmp/fleet/sessions/s-$wl/"ckpt-*.stck >/dev/null \
        || { echo "no checkpoints for session $wl"; exit 1; }
done

# --- Enforced leg: binding budgets with admission control. -------------------
# A budget of one minimum footprint (2048 B) admits exactly one session: the
# second parks in the one-deep pending queue (and is admitted FIFO when the
# first hangs up), the third is rejected with an error frame the client
# surfaces as a non-zero exit.
"$tmp/stcd" -serve -addr 127.0.0.1:0 -dir "$tmp/fleet-enforced" -window 1000 \
    -obs-addr 127.0.0.1:0 -obs-log "$tmp/events-enforced.jsonl" \
    -alloc-budget 2048 -enforce -pending-queue 1 \
    >"$tmp/stcd-enf.out" 2>&1 &
pid2=$!

ingest2="" obs2=""
for _ in $(seq 1 100); do
    ingest2="$(sed -n 's|.*fleet ingest on \([0-9.:]*\) .*|\1|p' "$tmp/stcd-enf.out" | head -1)"
    obs2="$(sed -n 's|.*endpoints on http://\([^/]*\)/.*|\1|p' "$tmp/stcd-enf.out" | head -1)"
    [ -n "$ingest2" ] && [ -n "$obs2" ] && break
    kill -0 "$pid2" 2>/dev/null || { echo "enforced stcd exited early:"; cat "$tmp/stcd-enf.out"; exit 1; }
    sleep 0.1
done
[ -n "$ingest2" ] && [ -n "$obs2" ] || { echo "enforced stcd never announced its addresses"; cat "$tmp/stcd-enf.out"; exit 1; }

# Session one: admitted, streams a long trace in the background so it holds
# the budget while the other opens arrive.
"$tmp/stcd" -connect "$ingest2" -session one -workload crc -n 2000000 >"$tmp/one.out" 2>&1 &
cpid1=$!
consuming=""
for _ in $(seq 1 300); do
    curl -s "http://$obs2/metrics" >"$tmp/metrics-enf.txt" || true
    grep -q 'fleet_session_consumed{session="one"} [1-9]' "$tmp/metrics-enf.txt" && { consuming=yes; break; }
    sleep 0.1
done
[ -n "$consuming" ] || { echo "session one never started consuming"; cat "$tmp/metrics-enf.txt"; exit 1; }

# Session two: over budget, parks (its stream buffers under backpressure).
"$tmp/stcd" -connect "$ingest2" -session two -workload bcnt -n 2000000 >"$tmp/two.out" 2>&1 &
cpid2=$!
parked=""
for _ in $(seq 1 300); do
    curl -s "http://$obs2/metrics" >"$tmp/metrics-enf.txt" || true
    grep -q '^fleet_sessions_pending 1$' "$tmp/metrics-enf.txt" && { parked=yes; break; }
    sleep 0.1
done
[ -n "$parked" ] || { echo "session two never parked"; cat "$tmp/metrics-enf.txt"; exit 1; }

# Session three: the queue is full, so the open is rejected — the client must
# exit non-zero and print the server's reason.
if "$tmp/stcd" -connect "$ingest2" -session three -workload bilv -n 1000 >"$tmp/three.out" 2>&1; then
    echo "rejected open did not fail the client:"; cat "$tmp/three.out"; exit 1
fi
grep -q "not admitted" "$tmp/three.out" \
    || { echo "client did not surface the rejection reason:"; cat "$tmp/three.out"; exit 1; }

# Session one finishes and hangs up; two is admitted from the queue, its
# buffered stream flushes, and it runs to completion.
wait "$cpid1" || { echo "admitted client failed:"; cat "$tmp/one.out"; exit 1; }
wait "$cpid2" || { echo "parked-then-admitted client failed:"; cat "$tmp/two.out"; exit 1; }

curl -s "http://$obs2/metrics" >"$tmp/metrics-enf.txt"
for want in \
    'fleet_admission_rejected_total 1' \
    'fleet_admitted_from_queue_total 1' \
    'fleet_session_consumed{session="two"} 2000000'; do
    grep -q "^$want$" "$tmp/metrics-enf.txt" \
        || { echo "enforced metrics lack '$want':"; cat "$tmp/metrics-enf.txt"; exit 1; }
done

kill -TERM "$pid2"
wait "$pid2" || true

# The shutdown report names the mode and the admission outcome.
grep -q 'fleet report (enforced):' "$tmp/stcd-enf.out" \
    || { echo "no enforced shutdown report:"; cat "$tmp/stcd-enf.out"; exit 1; }
grep -q '1 opens rejected, 1 admitted from the pending queue' "$tmp/stcd-enf.out" \
    || { echo "shutdown report missing admission counts:"; cat "$tmp/stcd-enf.out"; exit 1; }

echo "fleet smoke: OK"
