#!/usr/bin/env bash
# End-to-end smoke test of the fleet: start stcd serving the wire protocol,
# stream three workload traces into it as separate sessions, and assert
# that /metrics shows all three sessions fully consumed and settled, that
# the capacity allocator produced per-session assignments, and that
# stcexplain can extract one session's search story from the shared log.
set -euo pipefail

cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'kill "${pid:-}" 2>/dev/null || true; rm -rf "$tmp"' EXIT

go build -o "$tmp/stcd" ./cmd/stcd
go build -o "$tmp/stcexplain" ./cmd/stcexplain

"$tmp/stcd" -serve -addr 127.0.0.1:0 -dir "$tmp/fleet" -window 1000 \
    -obs-addr 127.0.0.1:0 -obs-log "$tmp/events.jsonl" \
    -alloc-budget 16384 -alloc-dp \
    >"$tmp/stcd.out" 2>&1 &
pid=$!

ingest="" obs=""
for _ in $(seq 1 100); do
    ingest="$(sed -n 's|.*fleet ingest on \([0-9.:]*\) .*|\1|p' "$tmp/stcd.out" | head -1)"
    obs="$(sed -n 's|.*endpoints on http://\([^/]*\)/.*|\1|p' "$tmp/stcd.out" | head -1)"
    [ -n "$ingest" ] && [ -n "$obs" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "stcd exited early:"; cat "$tmp/stcd.out"; exit 1; }
    sleep 0.1
done
[ -n "$ingest" ] && [ -n "$obs" ] || { echo "stcd never announced its addresses"; cat "$tmp/stcd.out"; exit 1; }
echo "stcd ingest on $ingest, observability on $obs"

# Three tenants, three workloads, one server.
for wl in crc bcnt bilv; do
    "$tmp/stcd" -connect "$ingest" -session "$wl" -workload "$wl" -n 150000
done

# The clients have hung up; wait for the shard workers to drain the queues
# (consumed reaches 150000 per session and every session settles).
settled=""
for _ in $(seq 1 300); do
    curl -s "http://$obs/metrics" >"$tmp/metrics.txt" || true
    if [ "$(grep -c 'fleet_session_consumed{session="[a-z]*"} 150000' "$tmp/metrics.txt")" = 3 ] \
        && [ "$(grep -c 'fleet_session_tuning{session="[a-z]*"} 0' "$tmp/metrics.txt")" = 3 ]; then
        settled=yes
        break
    fi
    sleep 0.1
done
[ -n "$settled" ] || { echo "three sessions never consumed+settled; metrics:"; cat "$tmp/metrics.txt"; exit 1; }

# The allocator must have partitioned the shared budget across the tenants.
[ "$(grep -c 'fleet_alloc_bytes{session="[a-z]*"} [1-9]' "$tmp/metrics.txt")" = 3 ] \
    || { echo "allocator produced no per-session assignments:"; cat "$tmp/metrics.txt"; exit 1; }

code="$(curl -s -o "$tmp/healthz.json" -w '%{http_code}' "http://$obs/healthz")"
[ "$code" = 200 ] || { echo "/healthz returned $code"; exit 1; }

kill -TERM "$pid"
wait "$pid" || true

# Per-session filtering of the shared fleet log must reconstruct a solo-run
# search story, within the paper's examined-configuration bound.
for wl in crc bcnt bilv; do
    "$tmp/stcexplain" -session "$wl" -max-examined 8 "$tmp/events.jsonl" >/dev/null
done

# Each session checkpoints into its own namespaced store.
for wl in crc bcnt bilv; do
    ls "$tmp/fleet/sessions/s-$wl/"ckpt-*.stck >/dev/null \
        || { echo "no checkpoints for session $wl"; exit 1; }
done

echo "fleet smoke: OK"
