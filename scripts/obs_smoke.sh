#!/usr/bin/env bash
# End-to-end smoke test of the observability surface: start the tuning
# daemon with telemetry armed on a short trace, scrape /healthz, /metrics
# (histogram families and HELP lines included) and /statusz while it
# serves, render the emitted event log with stcexplain — the search story
# and the -timeline span tree — and fail on any non-200 response, empty
# metrics, missing family, or an empty trajectory.
set -euo pipefail

cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'kill "${pid:-}" 2>/dev/null || true; rm -rf "$tmp"' EXIT

go build -o "$tmp/tuned" ./cmd/tuned
go build -o "$tmp/stcexplain" ./cmd/stcexplain

# The daemon picks a free port; -obs-wait keeps the endpoints up after the
# short stream drains so the scrapes below are race-free.
"$tmp/tuned" -workload jpeg -n 300000 -window 2000 \
    -obs-addr 127.0.0.1:0 -obs-log "$tmp/events.jsonl" -obs-wait 60s \
    >"$tmp/tuned.out" 2>&1 &
pid=$!

addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's|.*endpoints on http://\([^/]*\)/.*|\1|p' "$tmp/tuned.out" | head -1)"
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "tuned exited early:"; cat "$tmp/tuned.out"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] && echo "tuned serving on $addr" || { echo "tuned never announced its address"; exit 1; }

# Wait for the stream to drain (the summary table prints, then -obs-wait
# holds the endpoints), so the scrape sees the final state.
for _ in $(seq 1 300); do
    grep -q '^current:' "$tmp/tuned.out" && break
    sleep 0.1
done

code="$(curl -s -o "$tmp/healthz.json" -w '%{http_code}' "http://$addr/healthz")"
[ "$code" = 200 ] || { echo "/healthz returned $code"; exit 1; }
grep -q '"status":"ok"' "$tmp/healthz.json" || { echo "unexpected healthz body:"; cat "$tmp/healthz.json"; exit 1; }

code="$(curl -s -o "$tmp/metrics.txt" -w '%{http_code}' "http://$addr/metrics")"
[ "$code" = 200 ] || { echo "/metrics returned $code"; exit 1; }
grep -q '^daemon_consumed_accesses [1-9]' "$tmp/metrics.txt" \
    || { echo "metrics lack a non-zero daemon_consumed_accesses:"; cat "$tmp/metrics.txt"; exit 1; }
grep -q '^daemon_windows_total [1-9]' "$tmp/metrics.txt" \
    || { echo "metrics lack a non-zero daemon_windows_total"; exit 1; }

# Latency histograms: the search-duration family must expose buckets, sum
# and count, under a HELP line — wall-clock lives only here, never in the
# event log.
grep -q '^# HELP daemon_search_seconds ' "$tmp/metrics.txt" \
    || { echo "metrics lack the daemon_search_seconds HELP line"; exit 1; }
grep -q '^# TYPE daemon_search_seconds histogram' "$tmp/metrics.txt" \
    || { echo "daemon_search_seconds is not exposed as a histogram"; exit 1; }
grep -q '^daemon_search_seconds_bucket{le="+Inf"} [1-9]' "$tmp/metrics.txt" \
    || { echo "daemon_search_seconds has no observations"; exit 1; }
grep -q '^daemon_search_seconds_count [1-9]' "$tmp/metrics.txt" \
    || { echo "daemon_search_seconds_count missing"; exit 1; }
grep -q '^daemon_persist_seconds_bucket' "$tmp/metrics.txt" \
    || { echo "daemon_persist_seconds histogram missing"; exit 1; }

# /statusz: the live JSON snapshot must report consumed progress and the
# current configuration.
code="$(curl -s -o "$tmp/statusz.json" -w '%{http_code}' "http://$addr/statusz")"
[ "$code" = 200 ] || { echo "/statusz returned $code"; exit 1; }
grep -q '"consumed_accesses": [1-9]' "$tmp/statusz.json" \
    || { echo "statusz lacks consumed progress:"; cat "$tmp/statusz.json"; exit 1; }
grep -q '"config":' "$tmp/statusz.json" \
    || { echo "statusz lacks the current config:"; cat "$tmp/statusz.json"; exit 1; }

kill -INT "$pid"
wait "$pid" || true

# The explainer must reconstruct a non-empty trajectory within the paper's
# structural bound of 8 examined configurations per session (it exits
# non-zero on an empty trajectory or a bound violation).
"$tmp/stcexplain" -max-examined 8 "$tmp/events.jsonl"

# The span timeline must render the search and checkpoint spans with
# work-unit bars, and never mention wall-clock; its golden shape is the
# deterministic begin/end pairs in the event log.
"$tmp/stcexplain" -timeline "$tmp/events.jsonl" >"$tmp/timeline.txt"
grep -q '^span timeline' "$tmp/timeline.txt" || { echo "timeline header missing"; exit 1; }
grep -q 'tuner.search' "$tmp/timeline.txt" || { echo "timeline lacks tuner.search spans"; cat "$tmp/timeline.txt"; exit 1; }
grep -q 'configs' "$tmp/timeline.txt" || { echo "timeline lacks work units"; exit 1; }
! grep -q 'seconds' "$tmp/timeline.txt" || { echo "timeline leaked wall-clock:"; cat "$tmp/timeline.txt"; exit 1; }

echo "obs smoke: OK"
